//! Toggle-rate accounting for on-chip interconnect channels.
//!
//! Dynamic energy on a parallel bus or NoC channel is proportional to the
//! number of wires that switch between consecutive transfers (the activity
//! factor α in P = αCV²f). [`ChannelToggles`] tracks one physical channel:
//! it remembers the last flit transmitted and counts bit transitions against
//! each new flit.

use serde::{Deserialize, Serialize};

use crate::hamming;

/// Aggregated toggle statistics for one or more channels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToggleStats {
    /// Number of flits transferred (excluding the priming flit per channel).
    pub transfers: u64,
    /// Total wire transitions observed.
    pub bit_toggles: u64,
    /// Total wire-slots observed (`transfers * flit_bits`).
    pub bit_slots: u64,
}

impl ToggleStats {
    /// Fraction of wire-slots that toggled, in `[0, 1]`; 0.0 when empty.
    pub fn toggle_rate(&self) -> f64 {
        if self.bit_slots == 0 {
            0.0
        } else {
            self.bit_toggles as f64 / self.bit_slots as f64
        }
    }
}

impl core::ops::Add for ToggleStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            transfers: self.transfers + rhs.transfers,
            bit_toggles: self.bit_toggles + rhs.bit_toggles,
            bit_slots: self.bit_slots + rhs.bit_slots,
        }
    }
}

impl core::ops::AddAssign for ToggleStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl core::iter::Sum for ToggleStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

/// Toggle counter for a single physical channel with a fixed flit size.
///
/// The first flit primes the wires and does not count as a transfer (the
/// channel state before the first observed flit is unknown).
///
/// # Example
///
/// ```
/// use bvf_bits::ChannelToggles;
///
/// let mut ch = ChannelToggles::new(4); // 4-byte flits
/// ch.send(&[0x00, 0x00, 0x00, 0x00]);
/// ch.send(&[0xff, 0x00, 0x00, 0x00]); // 8 wires toggle
/// let s = ch.stats();
/// assert_eq!(s.transfers, 1);
/// assert_eq!(s.bit_toggles, 8);
/// assert_eq!(s.bit_slots, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelToggles {
    flit_bytes: usize,
    last: Option<Vec<u8>>,
    stats: ToggleStats,
}

impl ChannelToggles {
    /// Create a counter for a channel carrying `flit_bytes`-byte flits.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bytes` is zero.
    pub fn new(flit_bytes: usize) -> Self {
        assert!(flit_bytes > 0, "flit size must be non-zero");
        Self {
            flit_bytes,
            last: None,
            stats: ToggleStats::default(),
        }
    }

    /// Flit size in bytes.
    pub fn flit_bytes(&self) -> usize {
        self.flit_bytes
    }

    /// Transmit one flit. Flits shorter than the channel width are
    /// zero-padded (tail wires idle at 0), mirroring partially filled flits.
    ///
    /// # Panics
    ///
    /// Panics if `flit` is longer than the channel width.
    pub fn send(&mut self, flit: &[u8]) {
        assert!(
            flit.len() <= self.flit_bytes,
            "flit ({}B) exceeds channel width ({}B)",
            flit.len(),
            self.flit_bytes
        );
        let mut padded = vec![0u8; self.flit_bytes];
        padded[..flit.len()].copy_from_slice(flit);
        if let Some(prev) = &self.last {
            self.stats.transfers += 1;
            self.stats.bit_toggles += hamming::distance_bytes(prev, &padded);
            self.stats.bit_slots += self.flit_bytes as u64 * 8;
        }
        self.last = Some(padded);
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ToggleStats {
        self.stats
    }

    /// Clear history and statistics while keeping the flit size.
    pub fn reset(&mut self) {
        self.last = None;
        self.stats = ToggleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_flits_do_not_toggle() {
        let mut ch = ChannelToggles::new(8);
        for _ in 0..10 {
            ch.send(&[0xaa; 8]);
        }
        assert_eq!(ch.stats().bit_toggles, 0);
        assert_eq!(ch.stats().transfers, 9);
    }

    #[test]
    fn alternating_flits_toggle_everything() {
        let mut ch = ChannelToggles::new(2);
        ch.send(&[0x00, 0x00]);
        ch.send(&[0xff, 0xff]);
        ch.send(&[0x00, 0x00]);
        let s = ch.stats();
        assert_eq!(s.bit_toggles, 32);
        assert!((s.toggle_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_flits_are_zero_padded() {
        let mut ch = ChannelToggles::new(4);
        ch.send(&[0xff]); // wires: ff 00 00 00
        ch.send(&[]); // wires: 00 00 00 00 → 8 toggles
        assert_eq!(ch.stats().bit_toggles, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds channel width")]
    fn oversized_flit_panics() {
        let mut ch = ChannelToggles::new(2);
        ch.send(&[0, 0, 0]);
    }

    #[test]
    fn reset_clears_history() {
        let mut ch = ChannelToggles::new(1);
        ch.send(&[0xff]);
        ch.send(&[0x00]);
        ch.reset();
        assert_eq!(ch.stats(), ToggleStats::default());
        ch.send(&[0xff]); // priming flit again — no transfer counted
        assert_eq!(ch.stats().transfers, 0);
    }

    proptest! {
        #[test]
        fn toggle_rate_in_unit_interval(flits: Vec<[u8; 4]>) {
            let mut ch = ChannelToggles::new(4);
            for f in &flits {
                ch.send(f);
            }
            let r = ch.stats().toggle_rate();
            prop_assert!((0.0..=1.0).contains(&r));
        }

        #[test]
        fn transfers_is_sends_minus_one(flits: Vec<[u8; 2]>) {
            prop_assume!(!flits.is_empty());
            let mut ch = ChannelToggles::new(2);
            for f in &flits {
                ch.send(f);
            }
            prop_assert_eq!(ch.stats().transfers, flits.len() as u64 - 1);
        }
    }
}
