//! Toggle-rate accounting for on-chip interconnect channels.
//!
//! Dynamic energy on a parallel bus or NoC channel is proportional to the
//! number of wires that switch between consecutive transfers (the activity
//! factor α in P = αCV²f). [`ChannelToggles`] tracks one physical channel:
//! it remembers the last flit transmitted and counts bit transitions against
//! each new flit.

use serde::{Deserialize, Serialize};

use crate::hamming;

/// Aggregated toggle statistics for one or more channels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToggleStats {
    /// Number of flits transferred (excluding the priming flit per channel).
    pub transfers: u64,
    /// Total wire transitions observed.
    pub bit_toggles: u64,
    /// Total wire-slots observed (`transfers * flit_bits`).
    pub bit_slots: u64,
}

impl ToggleStats {
    /// Fraction of wire-slots that toggled, in `[0, 1]`; 0.0 when empty.
    pub fn toggle_rate(&self) -> f64 {
        if self.bit_slots == 0 {
            0.0
        } else {
            self.bit_toggles as f64 / self.bit_slots as f64
        }
    }
}

impl core::ops::Add for ToggleStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            transfers: self.transfers + rhs.transfers,
            bit_toggles: self.bit_toggles + rhs.bit_toggles,
            bit_slots: self.bit_slots + rhs.bit_slots,
        }
    }
}

impl core::ops::AddAssign for ToggleStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl core::iter::Sum for ToggleStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

/// Toggle counter for a single physical channel with a fixed flit size.
///
/// The first flit primes the wires and does not count as a transfer (the
/// channel state before the first observed flit is unknown).
///
/// # Example
///
/// ```
/// use bvf_bits::ChannelToggles;
///
/// let mut ch = ChannelToggles::new(4); // 4-byte flits
/// ch.send(&[0x00, 0x00, 0x00, 0x00]);
/// ch.send(&[0xff, 0x00, 0x00, 0x00]); // 8 wires toggle
/// let s = ch.stats();
/// assert_eq!(s.transfers, 1);
/// assert_eq!(s.bit_toggles, 8);
/// assert_eq!(s.bit_slots, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelToggles {
    flit_bytes: usize,
    /// Wire state after the most recent flit (always `flit_bytes` long;
    /// all-zero until primed). Updated in place — `send` never allocates.
    last: Vec<u8>,
    primed: bool,
    stats: ToggleStats,
}

impl ChannelToggles {
    /// Create a counter for a channel carrying `flit_bytes`-byte flits.
    ///
    /// # Panics
    ///
    /// Panics if `flit_bytes` is zero.
    pub fn new(flit_bytes: usize) -> Self {
        assert!(flit_bytes > 0, "flit size must be non-zero");
        Self {
            flit_bytes,
            last: vec![0u8; flit_bytes],
            primed: false,
            stats: ToggleStats::default(),
        }
    }

    /// Flit size in bytes.
    pub fn flit_bytes(&self) -> usize {
        self.flit_bytes
    }

    /// Transmit one flit. Flits shorter than the channel width are
    /// zero-padded (tail wires idle at 0), mirroring partially filled flits.
    ///
    /// # Panics
    ///
    /// Panics if `flit` is longer than the channel width.
    pub fn send(&mut self, flit: &[u8]) {
        assert!(
            flit.len() <= self.flit_bytes,
            "flit ({}B) exceeds channel width ({}B)",
            flit.len(),
            self.flit_bytes
        );
        if self.primed {
            // Distance to the zero-padded flit, without materializing the
            // padding: the tail wires drop to 0, so they contribute exactly
            // the weight of the previous tail.
            self.stats.transfers += 1;
            self.stats.bit_toggles += hamming::distance_bytes(&self.last[..flit.len()], flit)
                + hamming::weight_bytes(&self.last[flit.len()..]);
            self.stats.bit_slots += self.flit_bytes as u64 * 8;
        }
        self.last[..flit.len()].copy_from_slice(flit);
        self.last[flit.len()..].fill(0);
        self.primed = true;
    }

    /// Transmit a whole line as consecutive flits in one batched pass —
    /// bit-identical to calling [`ChannelToggles::send`] on every
    /// `flit_bytes`-sized chunk of `data` (the final chunk may be short and
    /// zero-pads, as usual), but without copying each intermediate flit into
    /// the wire-state buffer: toggles between in-line neighbors are computed
    /// directly on `data`, and only the final flit lands in `last`.
    ///
    /// Sending an empty line is a no-op (no flits).
    pub fn send_line(&mut self, data: &[u8]) {
        let fb = self.flit_bytes;
        let mut prev: Option<&[u8]> = None;
        for flit in data.chunks(fb) {
            match prev {
                None => {
                    // First flit toggles against the stored wire state.
                    if self.primed {
                        self.stats.transfers += 1;
                        self.stats.bit_toggles +=
                            hamming::distance_bytes(&self.last[..flit.len()], flit)
                                + hamming::weight_bytes(&self.last[flit.len()..]);
                        self.stats.bit_slots += fb as u64 * 8;
                    }
                }
                Some(p) => {
                    // In-line neighbor: `p` is always full-width (only the
                    // last chunk can be short), so the zero-padded tail of a
                    // short `flit` contributes `p`'s tail weight.
                    self.stats.transfers += 1;
                    self.stats.bit_toggles += hamming::distance_bytes(&p[..flit.len()], flit)
                        + hamming::weight_bytes(&p[flit.len()..]);
                    self.stats.bit_slots += fb as u64 * 8;
                }
            }
            prev = Some(flit);
        }
        if let Some(flit) = prev {
            self.last[..flit.len()].copy_from_slice(flit);
            self.last[flit.len()..].fill(0);
            self.primed = true;
        }
    }

    /// Transmit one full-width flit whose every byte is `byte` (e.g. the
    /// all-ones idle pattern of a precharged bus) without building it.
    pub fn send_splat(&mut self, byte: u8) {
        if self.primed {
            self.stats.transfers += 1;
            self.stats.bit_toggles += hamming::distance_to_splat(&self.last, byte);
            self.stats.bit_slots += self.flit_bytes as u64 * 8;
        }
        self.last.fill(byte);
        self.primed = true;
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ToggleStats {
        self.stats
    }

    /// Clear history and statistics while keeping the flit size.
    pub fn reset(&mut self) {
        self.last.fill(0);
        self.primed = false;
        self.stats = ToggleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_flits_do_not_toggle() {
        let mut ch = ChannelToggles::new(8);
        for _ in 0..10 {
            ch.send(&[0xaa; 8]);
        }
        assert_eq!(ch.stats().bit_toggles, 0);
        assert_eq!(ch.stats().transfers, 9);
    }

    #[test]
    fn alternating_flits_toggle_everything() {
        let mut ch = ChannelToggles::new(2);
        ch.send(&[0x00, 0x00]);
        ch.send(&[0xff, 0xff]);
        ch.send(&[0x00, 0x00]);
        let s = ch.stats();
        assert_eq!(s.bit_toggles, 32);
        assert!((s.toggle_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_flits_are_zero_padded() {
        let mut ch = ChannelToggles::new(4);
        ch.send(&[0xff]); // wires: ff 00 00 00
        ch.send(&[]); // wires: 00 00 00 00 → 8 toggles
        assert_eq!(ch.stats().bit_toggles, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds channel width")]
    fn oversized_flit_panics() {
        let mut ch = ChannelToggles::new(2);
        ch.send(&[0, 0, 0]);
    }

    #[test]
    fn reset_clears_history() {
        let mut ch = ChannelToggles::new(1);
        ch.send(&[0xff]);
        ch.send(&[0x00]);
        ch.reset();
        assert_eq!(ch.stats(), ToggleStats::default());
        ch.send(&[0xff]); // priming flit again — no transfer counted
        assert_eq!(ch.stats().transfers, 0);
    }

    #[test]
    fn splat_matches_explicit_flit() {
        let mut a = ChannelToggles::new(4);
        let mut b = ChannelToggles::new(4);
        for (flit, idle) in [([0x12u8, 0x34, 0x56, 0x78], 0xff), ([0; 4], 0x00)] {
            a.send(&flit);
            a.send_splat(idle);
            b.send(&flit);
            b.send(&[idle; 4]);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn send_never_depends_on_history_representation(
            flits: Vec<[u8; 8]>,
            cut in 0usize..8,
        ) {
            // Short flits zero-pad; a shortened resend must equal sending
            // the explicitly padded flit.
            let mut short = ChannelToggles::new(8);
            let mut padded = ChannelToggles::new(8);
            for f in &flits {
                let mut p = [0u8; 8];
                p[..cut].copy_from_slice(&f[..cut]);
                short.send(&f[..cut]);
                padded.send(&p);
            }
            prop_assert_eq!(short.stats(), padded.stats());
        }

        #[test]
        fn send_line_matches_per_flit_sends(lines: Vec<Vec<u8>>, idle_every in 0usize..4) {
            // Batched whole-line sends must be bit-identical to the scalar
            // per-flit path, across partial tail flits and interleaved idle
            // returns (the NoC packet sequence the collector produces).
            let mut batched = ChannelToggles::new(8);
            let mut scalar = ChannelToggles::new(8);
            for (i, line) in lines.iter().enumerate() {
                batched.send_line(line);
                for flit in line.chunks(8) {
                    scalar.send(flit);
                }
                if idle_every > 0 && i % idle_every == 0 {
                    batched.send_splat(0xff);
                    scalar.send_splat(0xff);
                }
                prop_assert_eq!(&batched, &scalar);
            }
            prop_assert_eq!(batched.stats(), scalar.stats());
        }

        #[test]
        fn toggle_rate_in_unit_interval(flits: Vec<[u8; 4]>) {
            let mut ch = ChannelToggles::new(4);
            for f in &flits {
                ch.send(f);
            }
            let r = ch.stats().toggle_rate();
            prop_assert!((0.0..=1.0).contains(&r));
        }

        #[test]
        fn transfers_is_sends_minus_one(flits: Vec<[u8; 2]>) {
            prop_assume!(!flits.is_empty());
            let mut ch = ChannelToggles::new(2);
            for f in &flits {
                ch.send(f);
            }
            prop_assert_eq!(ch.stats().transfers, flits.len() as u64 - 1);
        }
    }
}
