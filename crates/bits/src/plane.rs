//! Bit-plane (bit-sliced) view of a 32-lane warp access.
//!
//! The BVF analysis is fundamentally per *bit position*: one-counts per SRAM
//! column, toggles per wire. The natural layout for that is the transpose of
//! the lane matrix — plane `b` packs bit `b` of every lane into one `u32` —
//! so a per-bit-column statistic over a whole warp becomes a single wide
//! logic op plus a popcount instead of a 32-iteration scalar loop.
//!
//! [`BitPlanes`] holds the transposed matrix; [`transpose32`] is the
//! in-place 32×32 bit-matrix transpose (the classic delta-swap network,
//! five O(32) stages). The XNOR-style coder transforms become plane-wise
//! kernels on this layout (see `bvf_core::NvCoder::encode_planes` and
//! `bvf_core::VsCoder::encode_warp_planes`).

/// In-place 32×32 bit-matrix transpose.
///
/// Element `(r, c)` is bit `c` of `a[r]` (LSB = column 0). After the call,
/// bit `c` of `a[r]` equals bit `r` of the original `a[c]`.
///
/// The classic five-stage delta-swap network, run on row *pairs* packed
/// into `u64`s (row `2r` in the low half, row `2r+1` in the high half).
/// For swap distances `j >= 2` both rows of a word pair with the matching
/// rows `j` lanes down, so one `u64` delta-swap performs two row swaps;
/// the stage masks never select a bit position that the cross-row shift
/// could contaminate (the mask's top set bit is `31 - j` in each half).
/// The final `j = 1` stage exchanges bits between the two rows *inside*
/// each word as a distance-31 delta swap. Roughly half the word ops of
/// the plain `u32` network, all branch-free.
#[inline]
pub fn transpose32(a: &mut [u32; 32]) {
    let mut w = [0u64; 16];
    for (i, q) in a.chunks_exact(2).enumerate() {
        w[i] = (u64::from(q[1]) << 32) | u64::from(q[0]);
    }
    let mut j = 16usize;
    let mut m = 0x0000_ffff_0000_ffffu64;
    while j >= 2 {
        let h = j / 2;
        let mut k = 0usize;
        while k < 16 {
            let t = ((w[k] >> j) ^ w[k + h]) & m;
            w[k] ^= t << j;
            w[k + h] ^= t;
            k = (k + h + 1) & !h;
        }
        j >>= 1;
        m ^= m << j;
    }
    for x in &mut w {
        // Exchange bit c+1 of the low row with bit c of the high row for
        // even c: the j = 1 stage folded into one in-word swap.
        let t = ((*x >> 31) ^ *x) & 0x0000_0000_aaaa_aaaa;
        *x ^= t ^ (t << 31);
    }
    for (i, x) in w.iter().enumerate() {
        a[2 * i] = *x as u32;
        a[2 * i + 1] = (*x >> 32) as u32;
    }
}

/// Broadcast bit `bit` of `word` to all 32 positions (all-ones or zero).
///
/// This is the plane-space form of "XNOR every lane with the pivot lane":
/// the pivot lane's bit in a plane becomes a full-width splat operand.
#[inline]
pub fn splat_bit(word: u32, bit: u32) -> u32 {
    (word >> bit & 1).wrapping_neg()
}

/// The bit-plane transpose of a warp's 32 lane words.
///
/// Plane `b` collects bit `b` of every lane: bit `l` of `planes()[b]` is
/// bit `b` of lane `l`. The transpose is an involution, so
/// [`BitPlanes::to_lanes`] uses the same network.
///
/// # Example
///
/// ```
/// use bvf_bits::BitPlanes;
///
/// let mut lanes = [0u32; 32];
/// lanes[3] = 0b101; // lane 3 has bits 0 and 2 set
/// let p = BitPlanes::from_lanes(&lanes);
/// assert_eq!(p.planes()[0], 1 << 3);
/// assert_eq!(p.planes()[1], 0);
/// assert_eq!(p.planes()[2], 1 << 3);
/// assert_eq!(p.to_lanes(), lanes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitPlanes {
    planes: [u32; 32],
}

impl BitPlanes {
    /// Transpose a warp's lane words into bit-planes.
    #[inline]
    pub fn from_lanes(lanes: &[u32; 32]) -> Self {
        let mut planes = *lanes;
        transpose32(&mut planes);
        Self { planes }
    }

    /// Transpose back into lane words.
    #[inline]
    pub fn to_lanes(&self) -> [u32; 32] {
        let mut lanes = self.planes;
        transpose32(&mut lanes);
        lanes
    }

    /// The 32 bit-planes; entry `b` holds bit `b` of every lane.
    #[inline]
    pub fn planes(&self) -> &[u32; 32] {
        &self.planes
    }

    /// Mutable access for plane-wise transforms.
    #[inline]
    pub fn planes_mut(&mut self) -> &mut [u32; 32] {
        &mut self.planes
    }

    /// Total 1-bits across all lanes (plane-wise popcount).
    #[inline]
    pub fn ones(&self) -> u64 {
        self.ones_masked(u32::MAX)
    }

    /// Total 1-bits restricted to the lanes selected by `lane_mask` —
    /// the active-mask filter of a divergent warp, applied per bit column
    /// with one AND instead of a per-lane branch.
    ///
    /// Planes are consumed two per step as packed `u64`s with two
    /// accumulators: halving the popcount chain and breaking the
    /// accumulator dependency is ~3x faster than the obvious per-plane
    /// fold on scalar popcount hardware.
    #[inline]
    pub fn ones_masked(&self, lane_mask: u32) -> u64 {
        let m = (u64::from(lane_mask) << 32) | u64::from(lane_mask);
        let (mut a, mut b) = (0u64, 0u64);
        for q in self.planes.chunks_exact(4) {
            let p0 = (u64::from(q[1]) << 32) | u64::from(q[0]);
            let p1 = (u64::from(q[3]) << 32) | u64::from(q[2]);
            a += u64::from((p0 & m).count_ones());
            b += u64::from((p1 & m).count_ones());
        }
        a + b
    }
}

/// Wire toggles between two consecutive warp-wide transfers, counted
/// plane-wise: XOR matching planes and popcount. Equals the lane-space
/// Hamming distance (transposing both operands permutes, never mixes, bits).
#[inline]
pub fn toggles_between(a: &BitPlanes, b: &BitPlanes) -> u64 {
    a.planes
        .iter()
        .zip(&b.planes)
        .map(|(&x, &y)| u64::from((x ^ y).count_ones()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn lanes_from_seed(seed: u64) -> [u32; 32] {
        let mut x = seed;
        core::array::from_fn(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 32) as u32
        })
    }

    #[test]
    fn transpose_moves_single_bits() {
        for r in 0..32 {
            for c in [0usize, 1, 7, 21, 31] {
                let mut m = [0u32; 32];
                m[r] = 1 << c;
                transpose32(&mut m);
                for (b, &plane) in m.iter().enumerate() {
                    let expect = if b == c { 1u32 << r } else { 0 };
                    assert_eq!(plane, expect, "row {r} col {c} plane {b}");
                }
            }
        }
    }

    #[test]
    fn splat_bit_extremes() {
        assert_eq!(splat_bit(0b100, 2), u32::MAX);
        assert_eq!(splat_bit(0b100, 1), 0);
        assert_eq!(splat_bit(u32::MAX, 31), u32::MAX);
    }

    proptest! {
        #[test]
        fn transpose_is_involution(seed: u64) {
            let lanes = lanes_from_seed(seed);
            let p = BitPlanes::from_lanes(&lanes);
            prop_assert_eq!(p.to_lanes(), lanes);
        }

        #[test]
        fn planes_hold_bit_columns(seed: u64) {
            let lanes = lanes_from_seed(seed);
            let p = BitPlanes::from_lanes(&lanes);
            for (b, &plane) in p.planes().iter().enumerate() {
                for (l, &lane) in lanes.iter().enumerate() {
                    prop_assert_eq!(plane >> l & 1, lane >> b & 1);
                }
            }
        }

        #[test]
        fn ones_matches_lane_popcounts(seed: u64, mask: u32) {
            let lanes = lanes_from_seed(seed);
            let p = BitPlanes::from_lanes(&lanes);
            let all: u64 = lanes.iter().map(|&l| u64::from(l.count_ones())).sum();
            let active: u64 = lanes
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &l)| u64::from(l.count_ones()))
                .sum();
            prop_assert_eq!(p.ones(), all);
            prop_assert_eq!(p.ones_masked(mask), active);
            prop_assert_eq!(p.ones_masked(u32::MAX), all);
        }

        #[test]
        fn toggles_equal_lane_space_distance(a: u64, b: u64) {
            let la = lanes_from_seed(a);
            let lb = lanes_from_seed(b);
            let expected: u64 = la
                .iter()
                .zip(&lb)
                .map(|(&x, &y)| u64::from((x ^ y).count_ones()))
                .sum();
            let pa = BitPlanes::from_lanes(&la);
            let pb = BitPlanes::from_lanes(&lb);
            prop_assert_eq!(toggles_between(&pa, &pb), expected);
        }
    }
}
