//! [`Persist`] impls for the bit-statistics value types, so campaign
//! results containing them can live in the on-disk result store.
//!
//! Layouts are field-by-field in declaration order. Any field change to
//! these types must be accompanied by a bump of the *store format version*
//! in `bvf_sim::store`, which re-keys every entry (old entries become
//! unreachable, never misparsed).

use bvf_store::{CodecError, Persist, Reader, Writer};

use crate::profile::NarrowValueProfile;
use crate::stats::BitCounts;
use crate::toggle::ToggleStats;

impl Persist for BitCounts {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.ones);
        w.u64(self.zeros);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            ones: r.u64()?,
            zeros: r.u64()?,
        })
    }
}

impl Persist for ToggleStats {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.transfers);
        w.u64(self.bit_toggles);
        w.u64(self.bit_slots);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            transfers: r.u64()?,
            bit_toggles: r.u64()?,
            bit_slots: r.u64()?,
        })
    }
}

impl Persist for NarrowValueProfile {
    fn persist(&self, w: &mut Writer) {
        w.u64(self.words);
        w.u64(self.leading_bits_sum);
        w.u64(self.zero_words);
        w.u64(self.non_negative_words);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            words: r.u64()?,
            leading_bits_sum: r.u64()?,
            zero_words: r.u64()?,
            non_negative_words: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.persist(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::restore(&mut r).expect("decode");
        r.finish().expect("fully consumed");
        assert_eq!(back, v);
    }

    #[test]
    fn stats_types_round_trip() {
        round_trip(BitCounts { ones: 3, zeros: 61 });
        round_trip(ToggleStats {
            transfers: 10,
            bit_toggles: 77,
            bit_slots: 2560,
        });
        round_trip(NarrowValueProfile {
            words: 4,
            leading_bits_sum: 30,
            zero_words: 1,
            non_negative_words: 3,
        });
    }
}
