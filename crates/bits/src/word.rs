//! The [`BitWord`] abstraction over fixed-width unsigned machine words.
//!
//! BVF coders and statistics operate uniformly over 32-bit data words and
//! 64-bit instruction words (and, for cache lines, raw byte streams). The
//! trait pins down exactly the operations the rest of the workspace needs so
//! that algorithms such as XNOR encoding or Hamming profiling are written
//! once.

use core::fmt::{Binary, Debug, LowerHex};
use core::hash::Hash;
use core::ops::{BitAnd, BitOr, BitXor, Not, Shl, Shr};

/// A fixed-width unsigned word usable as a unit of BVF coding and statistics.
///
/// Implemented for `u8`, `u16`, `u32`, `u64`, and `u128`.
///
/// # Example
///
/// ```
/// use bvf_bits::BitWord;
///
/// fn ones<W: BitWord>(w: W) -> u32 { w.count_ones() }
/// assert_eq!(ones(0b1011u8), 3);
/// assert_eq!(ones(u64::MAX), 64);
/// ```
pub trait BitWord:
    Copy
    + Eq
    + Ord
    + Hash
    + Debug
    + Binary
    + LowerHex
    + Default
    + Send
    + Sync
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + Shl<u32, Output = Self>
    + Shr<u32, Output = Self>
    + 'static
{
    /// Number of bits in the word (e.g. 32 for `u32`).
    const BITS: u32;
    /// The all-zeros word.
    const ZERO: Self;
    /// The all-ones word.
    const ONES: Self;
    /// A word with only the most-significant (sign) bit set.
    const MSB: Self;

    /// Count of 1-bits (Hamming weight).
    fn count_ones(self) -> u32;
    /// Count of leading zero bits.
    fn leading_zeros(self) -> u32;
    /// Count of trailing zero bits.
    fn trailing_zeros(self) -> u32;
    /// Widen to `u128` for lossless accumulation.
    fn to_u128(self) -> u128;
    /// Truncating conversion from `u128`.
    fn from_u128(v: u128) -> Self;

    /// Count of 0-bits.
    #[inline]
    fn count_zeros(self) -> u32 {
        Self::BITS - self.count_ones()
    }

    /// `true` if the most-significant bit (two's-complement sign) is set.
    #[inline]
    fn sign_bit(self) -> bool {
        self & Self::MSB != Self::ZERO
    }

    /// XNOR: bitwise equivalence, `!(a ^ b)`.
    ///
    /// This is the single gate from which all three BVF coders are built: a
    /// bit XNORed with a matching reference bit becomes 1.
    #[inline]
    fn xnor(self, other: Self) -> Self {
        !(self ^ other)
    }
}

macro_rules! impl_bit_word {
    ($($t:ty),*) => {$(
        impl BitWord for $t {
            const BITS: u32 = <$t>::BITS;
            const ZERO: Self = 0;
            const ONES: Self = <$t>::MAX;
            const MSB: Self = 1 << (<$t>::BITS - 1);

            #[inline]
            fn count_ones(self) -> u32 { <$t>::count_ones(self) }
            #[inline]
            fn leading_zeros(self) -> u32 { <$t>::leading_zeros(self) }
            #[inline]
            fn trailing_zeros(self) -> u32 { <$t>::trailing_zeros(self) }
            #[inline]
            fn to_u128(self) -> u128 { self as u128 }
            #[inline]
            fn from_u128(v: u128) -> Self { v as $t }
        }
    )*};
}

impl_bit_word!(u8, u16, u32, u64, u128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(u32::MSB, 0x8000_0000);
        assert_eq!(u64::MSB, 0x8000_0000_0000_0000);
        assert_eq!(u8::ONES, 0xff);
        assert_eq!(u16::ZERO.count_ones(), 0);
    }

    #[test]
    fn xnor_is_equivalence() {
        assert_eq!(0xffu8.xnor(0xff), 0xff);
        assert_eq!(0x00u8.xnor(0x00), 0xff);
        assert_eq!(0xf0u8.xnor(0x0f), 0x00);
        assert_eq!(0b1010_1010u8.xnor(0b1010_1010), 0xff);
    }

    #[test]
    fn xnor_is_involutive_with_fixed_key() {
        // decode(encode(x)) == x because xnor(xnor(x, k), k) == x
        for x in [0u32, 1, 0xdead_beef, u32::MAX] {
            for k in [0u32, 0x8000_0000, 0x1234_5678, u32::MAX] {
                assert_eq!(x.xnor(k).xnor(k), x);
            }
        }
    }

    #[test]
    fn sign_bit_matches_twos_complement() {
        assert!(!(0x7fff_ffffu32).sign_bit());
        assert!((0x8000_0000u32).sign_bit());
        assert!(((-1i64) as u64).sign_bit());
    }

    #[test]
    fn count_zeros_complements_ones() {
        for w in [0u64, 1, u64::MAX, 0x0f0f_0f0f_0f0f_0f0f] {
            assert_eq!(w.count_ones() + BitWord::count_zeros(w), 64);
        }
    }
}
