//! Narrow-value profiling (the paper's Fig. 8 measurement).
//!
//! A *narrow value* is a small value stored in a wide data type — e.g. a
//! boolean in an `i32`, or an 8-bit pixel promoted to `f32`. Narrow values
//! manifest as long runs of leading sign bits. The paper measures, with the
//! PTX `clz` instruction, the average number of leading 0s per 32-bit word
//! (bit-inverting negative values first) and finds ≈9 leading bits on
//! average across 58 GPU applications.

use serde::{Deserialize, Serialize};

/// Count the leading *sign-equal* bits of a 32-bit word exactly as the
/// paper's profiling does: leading zeros for non-negative values, leading
/// zeros of the bitwise inverse for negative values (i.e. leading ones).
///
/// # Example
///
/// ```
/// use bvf_bits::signed_leading_bits_u32;
///
/// assert_eq!(signed_leading_bits_u32(0x0000_00ff), 24);
/// assert_eq!(signed_leading_bits_u32((-1i32) as u32), 32); // all sign bits
/// assert_eq!(signed_leading_bits_u32(0x8000_0000), 1);     // -2^31: one sign bit
/// assert_eq!(signed_leading_bits_u32(0), 32);
/// ```
#[inline]
pub fn signed_leading_bits_u32(w: u32) -> u32 {
    if w & 0x8000_0000 != 0 {
        (!w).leading_zeros()
    } else {
        w.leading_zeros()
    }
}

/// Accumulator for the per-application narrow-value profile.
///
/// Records the leading-bit count of every 32-bit value loaded/stored and the
/// frequency of the all-zero word (value locality of 0 — the paper cites 18%
/// of CPU loads and up to 62% for GPU deep-learning data).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NarrowValueProfile {
    /// Number of words profiled.
    pub words: u64,
    /// Sum of leading sign-equal bits over all words.
    pub leading_bits_sum: u64,
    /// Number of words equal to zero.
    pub zero_words: u64,
    /// Number of words with the sign bit clear (non-negative as `i32`).
    pub non_negative_words: u64,
}

impl NarrowValueProfile {
    /// New, empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profile one 32-bit word.
    #[inline]
    pub fn record(&mut self, w: u32) {
        self.words += 1;
        self.leading_bits_sum += u64::from(signed_leading_bits_u32(w));
        if w == 0 {
            self.zero_words += 1;
        }
        if w & 0x8000_0000 == 0 {
            self.non_negative_words += 1;
        }
    }

    /// Profile a slice of words.
    pub fn record_words(&mut self, words: &[u32]) {
        for &w in words {
            self.record(w);
        }
    }

    /// Profile a little-endian byte stream as consecutive 32-bit words.
    /// Trailing bytes that do not fill a word are ignored.
    pub fn record_bytes(&mut self, bytes: &[u8]) {
        for c in bytes.chunks_exact(4) {
            self.record(u32::from_le_bytes(c.try_into().expect("chunk of 4")));
        }
    }

    /// Mean leading sign-equal bits per word (the Fig. 8 metric); 0.0 when empty.
    pub fn mean_leading_bits(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.leading_bits_sum as f64 / self.words as f64
        }
    }

    /// Fraction of words equal to zero.
    pub fn zero_word_fraction(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.zero_words as f64 / self.words as f64
        }
    }

    /// Fraction of words that are non-negative when viewed as `i32`.
    pub fn non_negative_fraction(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.non_negative_words as f64 / self.words as f64
        }
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &Self) {
        self.words += other.words;
        self.leading_bits_sum += other.leading_bits_sum;
        self.zero_words += other.zero_words;
        self.non_negative_words += other.non_negative_words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn leading_bits_small_positive() {
        assert_eq!(signed_leading_bits_u32(1), 31);
        assert_eq!(signed_leading_bits_u32(255), 24);
        assert_eq!(signed_leading_bits_u32(0x7fff_ffff), 1);
    }

    #[test]
    fn leading_bits_small_negative() {
        // -1 = all ones → 32 leading sign bits
        assert_eq!(signed_leading_bits_u32((-1i32) as u32), 32);
        // -256 = 0xffff_ff00 → !w = 0x0000_00ff → 24
        assert_eq!(signed_leading_bits_u32((-256i32) as u32), 24);
    }

    #[test]
    fn profile_means() {
        let mut p = NarrowValueProfile::new();
        p.record_words(&[0, 1, 0x0000_ffff, (-1i32) as u32]);
        assert_eq!(p.words, 4);
        assert_eq!(p.zero_words, 1);
        assert_eq!(p.non_negative_words, 3);
        let expected = (32 + 31 + 16 + 32) as f64 / 4.0;
        assert!((p.mean_leading_bits() - expected).abs() < 1e-12);
    }

    #[test]
    fn record_bytes_ignores_tail() {
        let mut p = NarrowValueProfile::new();
        p.record_bytes(&[0, 0, 0, 0, 0xff]); // one word + 1 stray byte
        assert_eq!(p.words, 1);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = NarrowValueProfile::new();
        a.record_words(&[0, 7]);
        let mut b = NarrowValueProfile::new();
        b.record_words(&[u32::MAX]);
        let mut m = a;
        m.merge(&b);
        let mut whole = NarrowValueProfile::new();
        whole.record_words(&[0, 7, u32::MAX]);
        assert_eq!(m, whole);
    }

    proptest! {
        #[test]
        fn leading_bits_in_range(w: u32) {
            let n = signed_leading_bits_u32(w);
            prop_assert!(n >= 1 || w == 0x7fff_ffff || w.leading_zeros() == 0);
            prop_assert!(n <= 32);
        }

        #[test]
        fn negation_symmetry(v in i32::MIN+1..=i32::MAX) {
            // x and !x (≈ -x-1) have the same leading-bit count by construction
            let w = v as u32;
            prop_assert_eq!(signed_leading_bits_u32(w), signed_leading_bits_u32(!w));
        }
    }
}
