//! Edge-case coverage for the hand-rolled JSON pipeline: `jsonl::Record`
//! (writer) against `json::parse` (reader). The two are developed as a
//! pair — every record the writer can produce must parse back to the
//! values that were pushed in, byte-for-byte re-serializable, because the
//! scrub-and-diff determinism tests depend on that round trip.

use bvf_obs::json::{self, Value};
use bvf_obs::Record;
use proptest::prelude::*;

#[test]
fn escape_sequences_round_trip() {
    // Every escape class RFC 8259 names: quote, backslash, the named
    // control escapes, other control characters (\u form), and non-ASCII
    // text that must pass through unescaped.
    let tricky = "q\"b\\s/n\nr\rt\tnul\u{0}bel\u{7}del\u{7f}é—✓\u{1f600}";
    let line = Record::new("esc").str("s", tricky).finish();
    let v = json::parse(&line).expect("escaped record parses");
    assert_eq!(v.get("s").and_then(Value::as_str), Some(tricky));
    // And the parser's own re-serialization stays parseable and equal.
    let again = json::parse(&v.to_json_string()).expect("reserialized parses");
    assert_eq!(again, v);
}

#[test]
fn parser_accepts_escaped_forms_the_writer_never_emits() {
    // \/ and \u-escaped printable characters are legal JSON even though
    // Record never writes them.
    let v = json::parse(r#""a\/bAé""#).unwrap();
    assert_eq!(v.as_str(), Some("a/bAé"));
}

#[test]
fn nested_arrays_and_objects_round_trip() {
    let inner = Record::object()
        .u64("wall_ns", 42)
        .raw("xs", "[1,[2,[]],{\"k\":null}]")
        .finish();
    let line = Record::new("nest")
        .raw("timing", &inner)
        .raw("empty_obj", "{}")
        .raw("empty_arr", "[]")
        .finish();
    let v = json::parse(&line).expect("nested record parses");
    let timing = v.get("timing").expect("timing present");
    assert_eq!(timing.get("wall_ns").and_then(Value::as_f64), Some(42.0));
    let Some(Value::Array(xs)) = timing.get("xs") else {
        panic!("xs not an array");
    };
    assert_eq!(xs[0], Value::Number(1.0));
    assert_eq!(
        xs[1],
        Value::Array(vec![Value::Number(2.0), Value::Array(vec![])])
    );
    assert_eq!(xs[2].get("k"), Some(&Value::Null));
    assert_eq!(v.get("empty_obj"), Some(&Value::Object(vec![])));
    assert_eq!(v.get("empty_arr"), Some(&Value::Array(vec![])));
}

#[test]
fn integer_boundary_values() {
    let line = Record::new("bounds")
        .i64("i_min", i64::MIN)
        .i64("i_max", i64::MAX)
        .i64("zero", 0)
        .i64("neg", -1)
        .u64("u_max", u64::MAX)
        .finish();
    let v = json::parse(&line).expect("boundary record parses");
    // The parser reads numbers as f64, so boundary integers come back as
    // their nearest-double values — exactly what `as i64 as f64` gives.
    assert_eq!(
        v.get("i_min").and_then(Value::as_f64),
        Some(i64::MIN as f64)
    );
    assert_eq!(
        v.get("i_max").and_then(Value::as_f64),
        Some(i64::MAX as f64)
    );
    assert_eq!(v.get("zero").and_then(Value::as_f64), Some(0.0));
    assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-1.0));
    assert_eq!(
        v.get("u_max").and_then(Value::as_f64),
        Some(u64::MAX as f64)
    );
    // Values that fit in a double round-trip exactly.
    let exact = Record::new("exact").u64("x", (1 << 53) - 1).finish();
    let v = json::parse(&exact).unwrap();
    assert_eq!(v.get("x").and_then(Value::as_f64), Some(9007199254740991.0));
}

#[test]
fn float_boundary_values() {
    let line = Record::new("floats")
        .f64("tiny", f64::MIN_POSITIVE)
        .f64("huge", f64::MAX)
        .f64("neg_zero", -0.0)
        .f64("nan", f64::NAN)
        .f64("inf", f64::INFINITY)
        .f64("neg_inf", f64::NEG_INFINITY)
        .finish();
    let v = json::parse(&line).expect("float record parses");
    assert_eq!(
        v.get("tiny").and_then(Value::as_f64),
        Some(f64::MIN_POSITIVE)
    );
    assert_eq!(v.get("huge").and_then(Value::as_f64), Some(f64::MAX));
    assert_eq!(v.get("neg_zero").and_then(Value::as_f64), Some(0.0));
    // Non-finite floats serialize as null — JSON has no NaN/Inf.
    assert_eq!(v.get("nan"), Some(&Value::Null));
    assert_eq!(v.get("inf"), Some(&Value::Null));
    assert_eq!(v.get("neg_inf"), Some(&Value::Null));
}

#[test]
fn trailing_garbage_is_rejected() {
    for bad in [
        "{\"a\":1}x",
        "{\"a\":1} {\"b\":2}",
        "[1,2]]",
        "12 34",
        "null null",
        "{\"a\":1}\n{\"b\":2}",
    ] {
        assert!(
            json::parse(bad).is_err(),
            "accepted trailing garbage {bad:?}"
        );
    }
    // …but trailing whitespace is fine.
    assert!(json::parse("{\"a\":1}  \n\t").is_ok());
}

/// Build a valid Unicode string from arbitrary sampled code points,
/// mapping surrogates/overflow into the valid plane.
fn string_from(points: &[u32]) -> String {
    points
        .iter()
        .map(|&p| char::from_u32(p % 0x11_0000).unwrap_or('\u{fffd}'))
        .collect()
}

proptest! {
    /// Record→parse round trip: whatever fields go into a record come
    /// back out with the same keys, order, and values.
    #[test]
    fn record_parse_round_trip(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 1..8), 1..6),
        strs in proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..12), 1..6),
        ints in proptest::collection::vec(any::<u64>(), 1..6),
        signed in proptest::collection::vec(any::<i64>(), 1..6),
        floats in proptest::collection::vec(any::<f64>(), 1..6),
        bools in proptest::collection::vec(any::<bool>(), 1..6),
    ) {
        // Unique keys (later fields would shadow earlier ones in get()).
        let mut names: Vec<String> = keys.iter().map(|k| string_from(k)).collect();
        names.sort();
        names.dedup();
        let mut rec = Record::new("prop");
        let mut expect: Vec<(String, Value)> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            prop_assume!(name != "record");
            match i % 5 {
                0 => {
                    let s = string_from(&strs[i % strs.len()]);
                    rec = rec.str(name, &s);
                    expect.push((name.clone(), Value::String(s)));
                }
                1 => {
                    let v = ints[i % ints.len()];
                    rec = rec.u64(name, v);
                    expect.push((name.clone(), Value::Number(v as f64)));
                }
                2 => {
                    let v = signed[i % signed.len()];
                    rec = rec.i64(name, v);
                    expect.push((name.clone(), Value::Number(v as f64)));
                }
                3 => {
                    let v = floats[i % floats.len()];
                    rec = rec.f64(name, v);
                    expect.push((
                        name.clone(),
                        if v.is_finite() { Value::Number(v) } else { Value::Null },
                    ));
                }
                _ => {
                    let v = bools[i % bools.len()];
                    rec = rec.bool(name, v);
                    expect.push((name.clone(), Value::Bool(v)));
                }
            }
        }
        let line = rec.finish();
        let v = json::parse(&line).expect("generated record must parse");
        let Value::Object(pairs) = &v else { panic!("record is not an object") };
        prop_assert_eq!(pairs[0].clone(), ("record".to_string(), Value::String("prop".into())));
        prop_assert_eq!(pairs.len(), expect.len() + 1, "field count (order + dedup)");
        for (got, want) in pairs[1..].iter().zip(expect.iter()) {
            prop_assert_eq!(got, want);
        }
        // Parse→serialize→parse is a fixed point.
        let re = v.to_json_string();
        prop_assert_eq!(json::parse(&re).expect("reserialized parses"), v);
    }
}
