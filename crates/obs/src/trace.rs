//! Hierarchical causal spans with deterministic merge and Chrome
//! trace-event export.
//!
//! Every span carries a *stable causal id*: a `/`-separated path from the
//! campaign root down to the unit of work that produced it, e.g.
//! `campaign:main/app:VAD/shard:0/launch:0/phase:exec`. Ids are a pure
//! function of the work graph — never of thread ids, queue order, or the
//! clock — so the same campaign produces the same id set at any `--jobs`
//! or `--shards` setting.
//!
//! Recording follows the [`crate::metrics`] regime split: a
//! [`TraceSink::disabled`] sink makes every probe a no-op behind one
//! branch (no clock reads, no allocation); an enabled sink hands each
//! worker a [`TraceRecorder`] that pushes events into a private
//! fixed-capacity ring and spills to the shared sink only when the ring
//! fills or the recorder is dropped (so a panicking worker still
//! delivers what it recorded — the drop guard *is* the flush). The hot
//! path never takes a lock; the spill takes one mutex per
//! [`RING_CAPACITY`] events.
//!
//! Merging is deterministic: [`TraceSink::events`] sorts by
//! `(path, seq)` — causal id order, i.e. registry/(app, shard) order —
//! not by arrival. The Chrome JSON written by [`export_chrome`] is
//! loadable in Perfetto / `chrome://tracing`; [`scrub_chrome`] strips the
//! run-dependent fields (`ts`, `dur`, `tid`, `pid`) and drops the
//! execution-detail categories, leaving a byte-comparable span tree the
//! same way record scrubbing drops `"timing"`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{self, Value};

/// Per-recorder ring capacity, in events, before a spill to the shared
/// sink. Spills amortize the sink mutex to one lock per this many events.
pub const RING_CAPACITY: usize = 1024;

/// Hard cap on events retained by one sink. Beyond it, new events are
/// counted in [`TraceSink::dropped`] and discarded — tracing degrades to
/// a tally rather than growing without bound (overflow policy: drop
/// newest, never block, never reallocate under the lock).
pub const SINK_CAPACITY: usize = 1 << 20;

/// Categories whose events survive [`scrub_chrome`]: their existence,
/// ids, names, and args are a deterministic function of the workload.
/// Everything else (`sched`, `store`, `gpu`, …) describes one particular
/// execution — worker interleaving, cache state, shard split — and is
/// scrubbed along with timestamps.
pub const DETERMINISTIC_CATS: &[&str] = &["campaign", "app", "phase"];

/// One closed span (or instant, when `dur_ns` is 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stable causal id: `campaign:<label>/app:<code>/...`.
    pub path: String,
    /// Category (scrub survival class, see [`DETERMINISTIC_CATS`]).
    pub cat: &'static str,
    /// Deterministic tiebreak among events sharing a path (phase index,
    /// store op index, …).
    pub seq: u32,
    /// Display lane for Chrome export. Run-dependent; scrubbed.
    pub tid: u32,
    /// Start, nanoseconds since the sink epoch. Run-dependent; scrubbed.
    pub t0_ns: u64,
    /// Duration in nanoseconds. Run-dependent; scrubbed.
    pub dur_ns: u64,
    /// Deterministic counter args (instructions, cycles, event counts —
    /// never wall-clock-derived values).
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// The last path segment — the span's display name.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Sort key for the deterministic merge.
    fn key(&self) -> (&str, u32, u64) {
        (&self.path, self.seq, self.t0_ns)
    }
}

struct TraceShared {
    epoch: Instant,
    capacity: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    next_tid: AtomicU32,
}

impl TraceShared {
    fn absorb(&self, batch: &mut Vec<TraceEvent>) {
        let mut events = self.events.lock().expect("trace sink poisoned");
        let room = self.capacity.saturating_sub(events.len());
        if batch.len() > room {
            self.dropped
                .fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
            batch.truncate(room);
        }
        events.append(batch);
    }
}

/// A cloneable handle to a trace aggregate — or to nothing at all.
///
/// Mirrors [`crate::MetricsSink`]: cloning an enabled sink shares the
/// same event store, so a campaign hands one sink to every worker and
/// reads one merged, deterministically ordered event list at the end.
#[derive(Clone, Default)]
pub struct TraceSink {
    shared: Option<Arc<TraceShared>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceSink {
    /// The no-op sink: recorders hold no storage, spans read no clock.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// A live sink. Its creation instant is the trace epoch: every
    /// event's `t0_ns` is relative to it.
    pub fn enabled() -> Self {
        Self::with_capacity(SINK_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Self {
        Self {
            shared: Some(Arc::new(TraceShared {
                epoch: Instant::now(),
                capacity,
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                next_tid: AtomicU32::new(0),
            })),
        }
    }

    /// Is this a live sink?
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A recorder for the calling thread/work-item, displayed on lane
    /// `tid` in the Chrome export.
    pub fn recorder(&self, tid: u32) -> TraceRecorder {
        TraceRecorder {
            epoch: match &self.shared {
                Some(s) => s.epoch,
                None => Instant::now(),
            },
            buf: match &self.shared {
                Some(_) => Vec::with_capacity(RING_CAPACITY),
                None => Vec::new(),
            },
            shared: self.shared.clone(),
            tid,
        }
    }

    /// A recorder on a fresh auto-assigned lane (arrival-ordered — fine,
    /// since `tid` is scrubbed).
    pub fn lane_recorder(&self) -> TraceRecorder {
        let tid = match &self.shared {
            Some(s) => s.next_tid.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        self.recorder(tid)
    }

    /// Events counted out after [`SINK_CAPACITY`] was reached.
    pub fn dropped(&self) -> u64 {
        match &self.shared {
            Some(s) => s.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// All flushed events, merged deterministically: sorted by
    /// `(path, seq)` — causal-id order — with `t0_ns` as a final
    /// tiebreak. Empty for a disabled sink.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(s) = &self.shared else {
            return Vec::new();
        };
        let mut events = s.events.lock().expect("trace sink poisoned").clone();
        events.sort_by(|a, b| a.key().cmp(&b.key()));
        events
    }
}

/// An open span handle: the start instant, or nothing when the sink is
/// disabled. `Copy`, closed with [`TraceRecorder::end`].
#[derive(Debug, Clone, Copy)]
#[must_use = "a span only records when closed with TraceRecorder::end"]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Per-thread (or per-work-item) span recorder. Dropping a recorder
/// flushes it — this is the panic-safety guarantee: a worker unwinding
/// through a `catch_unwind` still delivers every event it closed.
pub struct TraceRecorder {
    shared: Option<Arc<TraceShared>>,
    epoch: Instant,
    tid: u32,
    buf: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Is the underlying sink live?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The lane this recorder draws on.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Nanoseconds since the sink epoch (0 when disabled). For callers
    /// that lay out synthetic events with [`TraceRecorder::emit`].
    pub fn now_ns(&self) -> u64 {
        if self.shared.is_some() {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Open a span. Reads the monotonic clock once iff enabled.
    #[inline]
    pub fn begin(&self) -> SpanGuard {
        SpanGuard {
            start: if self.shared.is_some() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Close `span` under the causal id `path`. `path` is built by the
    /// caller only on enabled recorders (guard with
    /// [`TraceRecorder::is_enabled`] to keep the disabled path
    /// allocation-free).
    #[inline]
    pub fn end(
        &mut self,
        span: SpanGuard,
        path: String,
        cat: &'static str,
        seq: u32,
        args: Vec<(&'static str, u64)>,
    ) {
        if let Some(t0) = span.start {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            let t0_ns = t0.duration_since(self.epoch).as_nanos() as u64;
            self.push(TraceEvent {
                path,
                cat,
                seq,
                tid: self.tid,
                t0_ns,
                dur_ns,
                args,
            });
        }
    }

    /// Record a pre-timed (or synthetic) event. No-op when disabled.
    pub fn emit(
        &mut self,
        path: String,
        cat: &'static str,
        seq: u32,
        t0_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        if self.shared.is_some() {
            self.push(TraceEvent {
                path,
                cat,
                seq,
                tid: self.tid,
                t0_ns,
                dur_ns,
                args,
            });
        }
    }

    fn push(&mut self, e: TraceEvent) {
        self.buf.push(e);
        if self.buf.len() >= RING_CAPACITY {
            self.flush();
        }
    }

    /// Spill buffered events to the shared sink (one mutex acquisition).
    pub fn flush(&mut self) {
        if let Some(s) = &self.shared {
            if !self.buf.is_empty() {
                s.absorb(&mut self.buf);
                self.buf.clear();
            }
        }
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

fn push_args_json(out: &mut String, args: &[(&'static str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&crate::jsonl::escape(k));
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// Serialize events (already merged/ordered by [`TraceSink::events`]) as
/// Chrome trace-event JSON: one `"X"` (complete) event per line inside a
/// `traceEvents` array. `ts`/`dur` are microseconds (the format's unit)
/// with nanosecond precision; `id` carries the stable causal path.
pub fn export_chrome(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"name\":\"");
        out.push_str(&crate::jsonl::escape(e.name()));
        out.push_str("\",\"cat\":\"");
        out.push_str(e.cat);
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        out.push_str(&format!("{:.3}", e.t0_ns as f64 / 1e3));
        out.push_str(",\"dur\":");
        out.push_str(&format!("{:.3}", e.dur_ns as f64 / 1e3));
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"id\":\"");
        out.push_str(&crate::jsonl::escape(&e.path));
        out.push_str("\",\"seq\":");
        out.push_str(&e.seq.to_string());
        out.push_str(",\"args\":");
        push_args_json(&mut out, &e.args);
        out.push('}');
    }
    out.push_str("\n],\"droppedEvents\":");
    out.push_str(&dropped.to_string());
    out.push_str("}\n");
    out
}

/// Scrub a Chrome trace produced by [`export_chrome`]: drop every event
/// whose category is not in [`DETERMINISTIC_CATS`], strip the
/// run-dependent keys (`ts`, `dur`, `tid`, `pid`) from the survivors,
/// and re-serialize one event per line. Two runs of the same workload
/// scrub to byte-identical text regardless of `--jobs`, `--shards`, or
/// which worker recorded what — the trace-level analogue of dropping
/// `"timing"` from telemetry records.
pub fn scrub_chrome(text: &str) -> Result<String, json::ParseError> {
    let v = json::parse(text)?;
    let events = match v.get("traceEvents") {
        Some(Value::Array(items)) => items,
        _ => {
            return Err(json::ParseError {
                offset: 0,
                message: "no traceEvents array",
            })
        }
    };
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for e in events {
        let cat = e.get("cat").and_then(Value::as_str).unwrap_or("");
        if !DETERMINISTIC_CATS.contains(&cat) {
            continue;
        }
        let scrubbed = e.without("ts").without("dur").without("tid").without("pid");
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&scrubbed.to_json_string());
    }
    out.push_str("\n]}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rec: &mut TraceRecorder, path: &str, cat: &'static str, seq: u32) {
        let s = rec.begin();
        rec.end(s, path.to_string(), cat, seq, Vec::new());
    }

    #[test]
    fn disabled_sink_records_nothing_and_reads_no_clock() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        let mut rec = sink.recorder(0);
        assert!(!rec.is_enabled());
        let s = rec.begin();
        rec.end(s, String::new(), "sched", 0, Vec::new());
        rec.emit(String::new(), "sched", 0, 1, 2, Vec::new());
        rec.flush();
        assert!(sink.events().is_empty());
        assert_eq!(sink.dropped(), 0);
        assert_eq!(rec.now_ns(), 0);
    }

    #[test]
    fn events_merge_in_causal_id_order_not_arrival_order() {
        let sink = TraceSink::enabled();
        let mut a = sink.recorder(1);
        let mut b = sink.recorder(2);
        span(&mut b, "c:x/app:Z", "app", 0);
        span(&mut a, "c:x/app:A/shard:1", "sched", 0);
        span(&mut b, "c:x", "campaign", 0);
        span(&mut a, "c:x/app:A/shard:0", "sched", 0);
        drop(a);
        drop(b);
        let paths: Vec<String> = sink.events().into_iter().map(|e| e.path).collect();
        assert_eq!(
            paths,
            ["c:x", "c:x/app:A/shard:0", "c:x/app:A/shard:1", "c:x/app:Z"]
        );
    }

    #[test]
    fn seq_breaks_ties_within_a_path() {
        let sink = TraceSink::enabled();
        let mut rec = sink.recorder(0);
        rec.emit("p".into(), "phase", 2, 0, 0, vec![("n", 2)]);
        rec.emit("p".into(), "phase", 0, 9, 0, vec![("n", 0)]);
        rec.emit("p".into(), "phase", 1, 5, 0, vec![("n", 1)]);
        drop(rec);
        let seqs: Vec<u32> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn drop_flushes_like_a_panicking_worker() {
        let sink = TraceSink::enabled();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rec = sink.lane_recorder();
            span(&mut rec, "c/app:X/shard:0", "sched", 0);
            panic!("worker dies mid-item");
        }));
        assert!(res.is_err());
        // The closed span survived the unwind: TraceRecorder's Drop is
        // the flush guard.
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].path, "c/app:X/shard:0");
    }

    #[test]
    fn ring_spills_at_capacity_and_sink_caps_with_drop_count() {
        let sink = TraceSink::enabled();
        let mut rec = sink.recorder(0);
        for i in 0..RING_CAPACITY {
            rec.emit(format!("e:{i:08}"), "sched", 0, i as u64, 0, Vec::new());
        }
        // The ring spilled without an explicit flush.
        assert_eq!(sink.events().len(), RING_CAPACITY);
        drop(rec);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn name_is_last_path_segment() {
        let e = TraceEvent {
            path: "campaign:main/app:VAD/phase:exec".into(),
            cat: "phase",
            seq: 0,
            tid: 0,
            t0_ns: 0,
            dur_ns: 0,
            args: Vec::new(),
        };
        assert_eq!(e.name(), "phase:exec");
    }

    #[test]
    fn export_is_valid_json_and_scrub_drops_run_detail() {
        let sink = TraceSink::enabled();
        let mut rec = sink.recorder(7);
        rec.emit("c:q".into(), "campaign", 0, 100, 5000, vec![("apps", 2)]);
        rec.emit(
            "c:q/app:A".into(),
            "app",
            0,
            150,
            900,
            vec![("instructions", 42)],
        );
        rec.emit("c:q/app:A/shard:0".into(), "sched", 0, 150, 900, Vec::new());
        drop(rec);
        let text = export_chrome(&sink.events(), sink.dropped());
        let v = json::parse(&text).expect("export parses");
        let Some(Value::Array(items)) = v.get("traceEvents") else {
            panic!("no traceEvents");
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(items[0].get("ts").and_then(Value::as_f64), Some(0.1));
        let scrubbed = scrub_chrome(&text).expect("scrubs");
        assert!(!scrubbed.contains("shard:0"), "sched event must be dropped");
        assert!(scrubbed.contains("\"id\":\"c:q/app:A\""));
        assert!(!scrubbed.contains("\"ts\""), "timestamps must be scrubbed");
        assert!(!scrubbed.contains("\"tid\""), "lanes must be scrubbed");
        assert!(scrubbed.contains("\"instructions\":42"), "args survive");
        // Scrubbed output is itself valid JSON.
        json::parse(&scrubbed).expect("scrubbed parses");
    }

    #[test]
    fn scrubbed_text_is_identical_across_interleavings() {
        let run = |swap: bool| {
            let sink = TraceSink::enabled();
            let mut a = sink.lane_recorder();
            let mut b = sink.lane_recorder();
            let (first, second) = if swap {
                (&mut b, &mut a)
            } else {
                (&mut a, &mut b)
            };
            first.emit("c/app:A".into(), "app", 0, 7, 3, vec![("instructions", 1)]);
            second.emit("c/app:B".into(), "app", 0, 2, 9, vec![("instructions", 2)]);
            second.emit("c/app:B/shard:0".into(), "sched", 0, 2, 9, Vec::new());
            drop(a);
            drop(b);
            scrub_chrome(&export_chrome(&sink.events(), sink.dropped())).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn sink_capacity_overflow_counts_drops() {
        let sink = TraceSink::with_capacity(4);
        let mut rec = sink.recorder(0);
        for i in 0..7 {
            rec.emit(format!("e:{i}"), "sched", 0, i, 0, Vec::new());
        }
        rec.flush();
        assert_eq!(sink.events().len(), 4, "sink never exceeds capacity");
        assert_eq!(sink.dropped(), 3, "overflow is counted, not silent");
        // Further events keep counting.
        rec.emit("late".into(), "sched", 0, 0, 0, Vec::new());
        rec.flush();
        assert_eq!(sink.dropped(), 4);
    }
}
