//! JSON-lines record builder.
//!
//! Telemetry records are flat-ish JSON objects, one per line, appended to a
//! file or stream. Serialization is hand-rolled (same convention as
//! `Table::to_json` in `bvf-sim`): field order is exactly insertion order,
//! strings are escaped per RFC 8259, and non-finite floats become `null` —
//! so a record's text is a deterministic function of the values pushed into
//! it, which is what lets tests diff two telemetry streams byte-wise after
//! scrubbing the timing fields.

/// Escape a string for embedding in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSON object. [`Record::new`] seeds a telemetry record
/// with its `"record"` kind tag; [`Record::object`] starts an empty object
/// for nesting via [`Record::raw`].
#[derive(Debug, Clone)]
pub struct Record {
    buf: String,
    empty: bool,
}

impl Record {
    /// Start a telemetry record: `{"record":"<kind>", …`.
    pub fn new(kind: &str) -> Self {
        Self::object().str("record", kind)
    }

    /// Start an empty object (for nested values).
    pub fn object() -> Self {
        Self {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(mut self, k: &str) -> Self {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        self
    }

    /// Append a string field.
    pub fn str(self, k: &str, v: &str) -> Self {
        let mut r = self.key(k);
        r.buf.push('"');
        r.buf.push_str(&escape(v));
        r.buf.push('"');
        r
    }

    /// Append an unsigned integer field.
    pub fn u64(self, k: &str, v: u64) -> Self {
        let mut r = self.key(k);
        r.buf.push_str(&v.to_string());
        r
    }

    /// Append a signed integer field.
    pub fn i64(self, k: &str, v: i64) -> Self {
        let mut r = self.key(k);
        r.buf.push_str(&v.to_string());
        r
    }

    /// Append a float field (`null` if not finite, per JSON's grammar).
    pub fn f64(self, k: &str, v: f64) -> Self {
        let mut r = self.key(k);
        if v.is_finite() {
            r.buf.push_str(&format!("{v}"));
        } else {
            r.buf.push_str("null");
        }
        r
    }

    /// Append a boolean field.
    pub fn bool(self, k: &str, v: bool) -> Self {
        let mut r = self.key(k);
        r.buf.push_str(if v { "true" } else { "false" });
        r
    }

    /// Append a pre-serialized JSON value verbatim (a nested
    /// [`Record::finish`], an array, …). The caller vouches it is valid
    /// JSON.
    pub fn raw(self, k: &str, json: &str) -> Self {
        let mut r = self.key(k);
        r.buf.push_str(json);
        r
    }

    /// Close the object and return it as one line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn record_shape_and_order() {
        let line = Record::new("app")
            .str("app", "VAD")
            .u64("instructions", 1234)
            .f64("rate", 0.5)
            .bool("ok", true)
            .finish();
        assert_eq!(
            line,
            r#"{"record":"app","app":"VAD","instructions":1234,"rate":0.5,"ok":true}"#
        );
    }

    #[test]
    fn nested_objects_via_raw() {
        let inner = Record::object().u64("wall_ns", 42).finish();
        let line = Record::new("campaign").raw("timing", &inner).finish();
        assert_eq!(line, r#"{"record":"campaign","timing":{"wall_ns":42}}"#);
    }

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let line = Record::new("t")
            .str("s", "a\"b\\c\nd\te\u{1}")
            .f64("nan", f64::NAN)
            .finish();
        let v = json::parse(&line).expect("valid JSON");
        assert_eq!(
            v.get("s").and_then(json::Value::as_str),
            Some("a\"b\\c\nd\te\u{1}")
        );
        assert!(matches!(v.get("nan"), Some(json::Value::Null)));
    }

    #[test]
    fn empty_object() {
        assert_eq!(Record::object().finish(), "{}");
    }
}
