//! Span timers, counters, and log2 histograms.
//!
//! Metrics are identified by `&'static str` names and registered against a
//! [`MetricsSink`]. Registration (rare, setup-time) takes a mutex;
//! recording (the hot path) touches only a per-thread [`Recorder`]'s plain
//! integers; aggregation ([`Recorder::flush`], called at natural
//! work-item boundaries and on drop) is a series of `fetch_add`s into a
//! fixed slab of shared atomics — lock-free, so workers never block each
//! other however often they flush.
//!
//! A sink built with [`MetricsSink::disabled`] makes every operation a
//! no-op behind a single branch: ids are dummies, recorders hold no
//! storage, and snapshots are empty. Instrumented code therefore never
//! needs its own `if profiling { … }` guards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Buckets per histogram: bucket `b` counts values in `[2^(b-1), 2^b)`
/// (bucket 0 counts zeros), which covers `u64` values up to `2^31`-ish
/// comfortably for the nanosecond/byte magnitudes recorded here; larger
/// values clamp into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Fixed slab capacity, in `u64` slots, of one enabled sink. A counter
/// takes 1 slot, a timer 2, a histogram `2 + HISTOGRAM_BUCKETS`; the cap
/// exists so aggregation storage never reallocates (reallocating under
/// concurrent `fetch_add` would need locking).
const SLOT_CAPACITY: usize = 4096;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered span timer (accumulated nanoseconds + count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Timer,
    Histogram,
}

fn slot_width(kind: Kind) -> u32 {
    match kind {
        Kind::Counter => 1,
        Kind::Timer => 2,                                // nanos, count
        Kind::Histogram => 2 + HISTOGRAM_BUCKETS as u32, // count, sum, buckets
    }
}

fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The Prometheus-legal series name a metric is exposed under: `bvf_` plus
/// the registered name with every non-alphanumeric character mapped to `_`.
fn sanitized(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("bvf_");
    out.extend(
        name.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }),
    );
    out
}

/// Every series name one metric contributes to [`MetricsSink::expose_text`].
/// Sanitization is lossy (`store.hits` and `store_hits` map to the same
/// series), so registration checks these sets for disjointness — a
/// collision would emit duplicate series with duplicate `# TYPE` lines, an
/// exposition Prometheus rejects wholesale.
fn exposed_names(name: &str, kind: Kind) -> Vec<String> {
    let base = sanitized(name);
    match kind {
        Kind::Counter => vec![base],
        Kind::Timer => vec![format!("{base}_nanos_total"), format!("{base}_count")],
        Kind::Histogram => vec![
            format!("{base}_bucket"),
            format!("{base}_sum"),
            format!("{base}_count"),
            // The family name itself: it owns the `# TYPE` line.
            base,
        ],
    }
}

#[derive(Debug)]
struct MetricDef {
    name: &'static str,
    kind: Kind,
    base: u32,
}

struct Shared {
    defs: Mutex<Vec<MetricDef>>,
    slots: Box<[AtomicU64]>,
}

impl Shared {
    fn register(&self, name: &'static str, kind: Kind) -> u32 {
        let mut defs = self.defs.lock().expect("metric registry poisoned");
        if let Some(d) = defs.iter().find(|d| d.name == name) {
            assert!(
                d.kind == kind,
                "metric {name:?} re-registered with a different kind"
            );
            return d.base;
        }
        // Reject registrations whose exposition names collide with an
        // already-registered metric: sanitization is lossy, and duplicate
        // series (with duplicate `# TYPE` lines) make `expose_text` an
        // invalid exposition that a Prometheus scraper rejects wholesale.
        let new_names = exposed_names(name, kind);
        for d in defs.iter() {
            if let Some(clash) = exposed_names(d.name, d.kind)
                .iter()
                .find(|n| new_names.contains(n))
            {
                panic!(
                    "metric {name:?} collides with {:?} in the text exposition \
                     (both expose the series {clash:?}); rename one of them",
                    d.name
                );
            }
        }
        let base = defs
            .last()
            .map(|d| d.base + slot_width(d.kind))
            .unwrap_or(0);
        assert!(
            (base + slot_width(kind)) as usize <= SLOT_CAPACITY,
            "metric slot capacity ({SLOT_CAPACITY}) exhausted registering {name:?}"
        );
        defs.push(MetricDef { name, kind, base });
        base
    }

    /// Slots in use (defs lock held briefly; callers are setup paths).
    fn used(&self) -> usize {
        let defs = self.defs.lock().expect("metric registry poisoned");
        defs.last()
            .map(|d| (d.base + slot_width(d.kind)) as usize)
            .unwrap_or(0)
    }
}

/// A cloneable handle to a metrics aggregate — or to nothing at all.
///
/// Cloning an enabled sink shares the same aggregate (it is an `Arc`
/// internally), so a campaign can hand one sink to every worker and read a
/// combined [`MetricsSink::snapshot`] at the end.
#[derive(Clone, Default)]
pub struct MetricsSink {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl MetricsSink {
    /// The no-op sink: every id is a dummy, every record call a no-op.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// A live sink with a fresh, empty aggregate.
    pub fn enabled() -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                defs: Mutex::new(Vec::new()),
                slots: (0..SLOT_CAPACITY).map(|_| AtomicU64::new(0)).collect(),
            })),
        }
    }

    /// Is this a live sink?
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&self, name: &'static str) -> CounterId {
        CounterId(match &self.shared {
            Some(s) => s.register(name, Kind::Counter),
            None => 0,
        })
    }

    /// Register (or look up) a span timer by name.
    pub fn timer(&self, name: &'static str) -> TimerId {
        TimerId(match &self.shared {
            Some(s) => s.register(name, Kind::Timer),
            None => 0,
        })
    }

    /// Register (or look up) a histogram by name.
    pub fn histogram(&self, name: &'static str) -> HistogramId {
        HistogramId(match &self.shared {
            Some(s) => s.register(name, Kind::Histogram),
            None => 0,
        })
    }

    /// A recorder for the calling thread. Register the metrics it will
    /// touch *before* creating it, so its local storage is sized once and
    /// the record path never grows it.
    pub fn recorder(&self) -> Recorder {
        Recorder {
            local: match &self.shared {
                Some(s) => vec![0; s.used()],
                None => Vec::new(),
            },
            shared: self.shared.clone(),
        }
    }

    /// Add to a counter directly in the shared aggregate (one `fetch_add`).
    /// For cross-worker live values read while workers still run — per-event
    /// hot paths should go through a [`Recorder`] instead.
    pub fn add(&self, c: CounterId, n: u64) {
        if let Some(s) = &self.shared {
            s.slots[c.0 as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current aggregated value of a counter (0 on a disabled sink).
    pub fn counter_value(&self, c: CounterId) -> u64 {
        match &self.shared {
            Some(s) => s.slots[c.0 as usize].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Current aggregated (nanos, count) of a timer (zeros on a disabled
    /// sink).
    pub fn timer_value(&self, t: TimerId) -> (u64, u64) {
        match &self.shared {
            Some(s) => (
                s.slots[t.0 as usize].load(Ordering::Relaxed),
                s.slots[t.0 as usize + 1].load(Ordering::Relaxed),
            ),
            None => (0, 0),
        }
    }

    /// Text exposition of the current [`MetricsSink::snapshot`] —
    /// Prometheus-style `# TYPE` + `name value` lines, the exact payload
    /// a `/metrics` endpoint returns. Deterministic given the aggregate
    /// state: metrics appear in registration order, names are sanitized
    /// (`.` → `_`) and prefixed `bvf_`. Counters expose one sample;
    /// timers expose `_nanos_total`/`_count`; histograms expose
    /// cumulative `_bucket{le="2^b - 1"}` samples (the log2 bucket `b`
    /// counts values in `[2^(b-1), 2^b)`, so for the integer values
    /// recorded here the inclusive upper bound of everything counted
    /// through bucket `b` is exactly `2^b - 1`) plus `_sum`/`_count`.
    /// Empty string for a disabled sink.
    ///
    /// Series names are guaranteed unique with exactly one `# TYPE` line
    /// each, declared before its samples: registration rejects any metric
    /// whose sanitized exposition names collide with an existing one (see
    /// [`validate_exposition`], which checks exactly these invariants).
    pub fn expose_text(&self) -> String {
        let mut out = String::new();
        for m in self.snapshot() {
            let name = sanitized(m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Timer { nanos, count } => {
                    out.push_str(&format!(
                        "# TYPE {name}_nanos_total counter\n{name}_nanos_total {nanos}\n\
                         # TYPE {name}_count counter\n{name}_count {count}\n"
                    ));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (b, n) in buckets.iter().enumerate() {
                        cum += n;
                        if b + 1 < HISTOGRAM_BUCKETS {
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                                (1u64 << b) - 1
                            ));
                        }
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {cum}\n\
                         {name}_sum {sum}\n{name}_count {count}\n"
                    ));
                }
            }
        }
        out
    }

    /// Every registered metric with its aggregated value, in registration
    /// order. Empty for a disabled sink.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let Some(s) = &self.shared else {
            return Vec::new();
        };
        let defs = s.defs.lock().expect("metric registry poisoned");
        defs.iter()
            .map(|d| {
                let at = |off: u32| s.slots[(d.base + off) as usize].load(Ordering::Relaxed);
                let value = match d.kind {
                    Kind::Counter => MetricValue::Counter(at(0)),
                    Kind::Timer => MetricValue::Timer {
                        nanos: at(0),
                        count: at(1),
                    },
                    Kind::Histogram => MetricValue::Histogram {
                        count: at(0),
                        sum: at(1),
                        buckets: Box::new(core::array::from_fn(|b| at(2 + b as u32))),
                    },
                };
                MetricSnapshot {
                    name: d.name,
                    value,
                }
            })
            .collect()
    }
}

/// One metric's aggregated state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The name the metric was registered under.
    pub name: &'static str,
    /// Its aggregated value.
    pub value: MetricValue,
}

/// Aggregated value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Accumulated span time and number of spans.
    Timer {
        /// Total nanoseconds across all closed spans.
        nanos: u64,
        /// Number of closed spans.
        count: u64,
    },
    /// Log2-bucketed value distribution.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Bucket `b` counts observations in `[2^(b-1), 2^b)`. Boxed so
        /// the variant doesn't dominate the enum's size.
        buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    },
}

impl MetricValue {
    /// Mean observed value for histograms/timers, `None` for counters or
    /// empty series.
    pub fn mean(&self) -> Option<f64> {
        match self {
            MetricValue::Counter(_) => None,
            MetricValue::Timer { nanos, count } => {
                (*count > 0).then(|| *nanos as f64 / *count as f64)
            }
            MetricValue::Histogram { count, sum, .. } => {
                (*count > 0).then(|| *sum as f64 / *count as f64)
            }
        }
    }
}

/// Check that a Prometheus-style text exposition is well-formed enough for
/// a scraper to accept it:
///
/// * every `# TYPE` line names a distinct family with a known kind,
/// * every sample's family has a `# TYPE` line *above* it (histogram
///   `_bucket`/`_sum`/`_count` samples resolve to their family name),
/// * no two samples share a name + label set,
/// * every sample line parses as `name[{labels}] value` with a finite
///   numeric value (`+Inf` bucket bounds live in the label, which is not
///   parsed as a number).
///
/// Used by the exposition tests here and by `bvf-serve`'s CI smoke job to
/// validate a live `/metrics` scrape. Returns the first violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashSet;
    let mut families: HashSet<&str> = HashSet::new();
    let mut seen_series: HashSet<&str> = HashSet::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {n}: malformed # TYPE line: {line:?}"));
            };
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown metric kind {kind:?}"));
            }
            if !families.insert(name) {
                return Err(format!("line {n}: duplicate # TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (e.g. # HELP) are legal anywhere
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {n}: sample without a value: {line:?}"));
        };
        match value.parse::<f64>() {
            Ok(v) if v.is_finite() => {}
            _ => return Err(format!("line {n}: non-numeric sample value {value:?}")),
        }
        let name = series.split('{').next().unwrap_or_default();
        let legal_name = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c == '_' || c == ':' || c.is_ascii_alphanumeric());
        if !legal_name {
            return Err(format!("line {n}: illegal series name {name:?}"));
        }
        // Histogram samples belong to the family their suffix strips to —
        // but only when that family is declared (a *counter* named `x_count`
        // is its own family).
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix).filter(|b| families.contains(b)))
            .unwrap_or(name);
        if !families.contains(family) {
            return Err(format!(
                "line {n}: sample {name:?} has no preceding # TYPE line for {family:?}"
            ));
        }
        if !seen_series.insert(series) {
            return Err(format!("line {n}: duplicate series {series:?}"));
        }
    }
    Ok(())
}

/// An open span handle: holds the start instant (or nothing, when the sink
/// is disabled). `Copy`, so it can be parked in a local while the recorder
/// is borrowed by nested work, then closed with [`Recorder::end`].
#[derive(Debug, Clone, Copy)]
#[must_use = "a span only records when closed with Recorder::end"]
pub struct Span {
    timer: TimerId,
    start: Option<Instant>,
}

/// Per-thread metric accumulator (see module docs). Dropping a recorder
/// flushes it.
pub struct Recorder {
    shared: Option<Arc<Shared>>,
    local: Vec<u64>,
}

impl Recorder {
    #[inline]
    fn slot(&mut self, i: usize) -> &mut u64 {
        // Ids registered after this recorder was created land past the end;
        // growing here keeps the common path (pre-registered ids) a plain
        // index.
        if i >= self.local.len() {
            self.local.resize(i + 1, 0);
        }
        &mut self.local[i]
    }

    /// Is the underlying sink live?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Open a span on `timer`. Reads the monotonic clock once iff enabled.
    #[inline]
    pub fn begin(&self, timer: TimerId) -> Span {
        Span {
            timer,
            start: if self.shared.is_some() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Close `span`, accumulating its elapsed time locally.
    #[inline]
    pub fn end(&mut self, span: Span) {
        self.end_n(span, 1);
    }

    /// Close `span`, accumulating its elapsed time locally while counting
    /// it as `n` events — for batched work where one span covers `n`
    /// logical occurrences (e.g. a scheduler slot that issued a whole
    /// straight-line instruction run).
    #[inline]
    pub fn end_n(&mut self, span: Span, n: u64) {
        if let Some(t0) = span.start {
            let ns = t0.elapsed().as_nanos() as u64;
            let base = span.timer.0 as usize;
            *self.slot(base) += ns;
            *self.slot(base + 1) += n;
        }
    }

    /// Add `n` to a counter (a plain local add when enabled).
    #[inline]
    pub fn add(&mut self, c: CounterId, n: u64) {
        if self.shared.is_some() {
            *self.slot(c.0 as usize) += n;
        }
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, h: HistogramId, v: u64) {
        if self.shared.is_some() {
            let base = h.0 as usize;
            *self.slot(base) += 1;
            *self.slot(base + 1) += v;
            *self.slot(base + 2 + bucket_of(v)) += 1;
        }
    }

    /// This recorder's unflushed nanoseconds on `timer`.
    pub fn timer_nanos(&self, t: TimerId) -> u64 {
        if self.shared.is_some() {
            self.local.get(t.0 as usize).copied().unwrap_or(0)
        } else {
            0
        }
    }

    /// This recorder's unflushed span count on `timer`.
    pub fn timer_count(&self, t: TimerId) -> u64 {
        if self.shared.is_some() {
            self.local.get(t.0 as usize + 1).copied().unwrap_or(0)
        } else {
            0
        }
    }

    /// This recorder's unflushed value of a counter.
    pub fn counter_value(&self, c: CounterId) -> u64 {
        if self.shared.is_some() {
            self.local.get(c.0 as usize).copied().unwrap_or(0)
        } else {
            0
        }
    }

    /// Push every locally accumulated value into the shared aggregate
    /// (lock-free: one `fetch_add` per touched slot) and reset the locals.
    pub fn flush(&mut self) {
        if let Some(s) = &self.shared {
            for (i, v) in self.local.iter_mut().enumerate() {
                if *v != 0 {
                    s.slots[i].fetch_add(*v, Ordering::Relaxed);
                    *v = 0;
                }
            }
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_timers_aggregate_through_flush() {
        let sink = MetricsSink::enabled();
        let c = sink.counter("events");
        let t = sink.timer("work");
        let mut rec = sink.recorder();
        rec.add(c, 3);
        rec.add(c, 4);
        let span = rec.begin(t);
        std::thread::sleep(std::time::Duration::from_micros(50));
        rec.end(span);
        assert_eq!(rec.counter_value(c), 7);
        assert_eq!(rec.timer_count(t), 1);
        assert!(rec.timer_nanos(t) > 0);
        // Nothing shared until flush.
        assert_eq!(sink.counter_value(c), 0);
        rec.flush();
        assert_eq!(sink.counter_value(c), 7);
        let (ns, n) = sink.timer_value(t);
        assert_eq!(n, 1);
        assert!(ns >= 50_000, "span under-measured: {ns}ns");
        // Locals reset by flush; a second flush adds nothing.
        rec.flush();
        assert_eq!(sink.counter_value(c), 7);
    }

    #[test]
    fn drop_flushes() {
        let sink = MetricsSink::enabled();
        let c = sink.counter("drops");
        {
            let mut rec = sink.recorder();
            rec.add(c, 11);
        }
        assert_eq!(sink.counter_value(c), 11);
    }

    #[test]
    fn aggregation_across_threads_is_exact() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let sink = MetricsSink::enabled();
        let c = sink.counter("spins");
        let t = sink.timer("spans");
        let h = sink.histogram("values");
        std::thread::scope(|scope| {
            for k in 0..THREADS {
                let sink = sink.clone();
                scope.spawn(move || {
                    let mut rec = sink.recorder();
                    for i in 0..PER_THREAD {
                        rec.add(c, 1);
                        rec.observe(h, k * PER_THREAD + i);
                        let span = rec.begin(t);
                        rec.end(span);
                    }
                    // rec drops → flush
                });
            }
        });
        assert_eq!(sink.counter_value(c), THREADS * PER_THREAD);
        let (_, spans) = sink.timer_value(t);
        assert_eq!(spans, THREADS * PER_THREAD);
        let snap = sink.snapshot();
        let hist = snap.iter().find(|m| m.name == "values").expect("hist");
        match &hist.value {
            MetricValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                assert_eq!(*count, THREADS * PER_THREAD);
                let n = THREADS * PER_THREAD;
                assert_eq!(*sum, n * (n - 1) / 2);
                assert_eq!(buckets.iter().sum::<u64>(), n);
            }
            v => panic!("wrong kind: {v:?}"),
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        let c = sink.counter("a");
        let t = sink.timer("b");
        let h = sink.histogram("c");
        let mut rec = sink.recorder();
        assert!(!rec.is_enabled());
        rec.add(c, 5);
        rec.observe(h, 123);
        let span = rec.begin(t);
        rec.end(span);
        rec.flush();
        sink.add(c, 9);
        assert_eq!(rec.counter_value(c), 0);
        assert_eq!(rec.timer_nanos(t), 0);
        assert_eq!(sink.counter_value(c), 0);
        assert_eq!(sink.timer_value(t), (0, 0));
        assert!(sink.snapshot().is_empty(), "disabled sink must stay empty");
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let sink = MetricsSink::enabled();
        let a = sink.counter("x");
        let b = sink.counter("x");
        assert_eq!(a, b);
        let t1 = sink.timer("y");
        let t2 = sink.timer("y");
        assert_eq!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let sink = MetricsSink::enabled();
        let _ = sink.counter("same");
        let _ = sink.timer("same");
    }

    #[test]
    fn late_registration_still_records() {
        let sink = MetricsSink::enabled();
        let mut rec = sink.recorder(); // before any registration
        let c = sink.counter("late");
        rec.add(c, 2);
        rec.flush();
        assert_eq!(sink.counter_value(c), 2);
    }

    #[test]
    fn direct_add_is_visible_immediately() {
        let sink = MetricsSink::enabled();
        let c = sink.counter("live");
        sink.add(c, 10);
        sink.add(c, 5);
        assert_eq!(sink.counter_value(c), 15);
    }

    #[test]
    fn histogram_bucketing() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let sink = MetricsSink::enabled();
        sink.counter("first");
        sink.timer("second");
        sink.histogram("third");
        let names: Vec<_> = sink.snapshot().iter().map(|m| m.name).collect();
        assert_eq!(names, ["first", "second", "third"]);
    }

    #[test]
    fn panicking_worker_still_flushes_via_drop_guard() {
        // Regression lock for telemetry loss on worker panic: batched
        // locals must reach the shared aggregate when the recorder
        // unwinds through a catch_unwind, because Drop is the flush.
        let sink = MetricsSink::enabled();
        let c = sink.counter("pre_panic_events");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rec = sink.recorder();
            rec.add(c, 17);
            panic!("worker dies with unflushed locals");
        }));
        assert!(res.is_err());
        assert_eq!(
            sink.counter_value(c),
            17,
            "locals batched before the panic must survive the unwind"
        );
    }

    #[test]
    fn expose_text_renders_all_kinds_deterministically() {
        let sink = MetricsSink::enabled();
        let c = sink.counter("store.hit");
        let t = sink.timer("sim.step");
        let h = sink.histogram("item.bytes");
        sink.add(c, 6);
        let mut rec = sink.recorder();
        let span = rec.begin(t);
        rec.end(span);
        rec.observe(h, 0);
        rec.observe(h, 1);
        rec.observe(h, 5);
        rec.flush();
        let text = sink.expose_text();
        assert!(text.contains("# TYPE bvf_store_hit counter\nbvf_store_hit 6\n"));
        assert!(text.contains("# TYPE bvf_sim_step_nanos_total counter\n"));
        assert!(text.contains("bvf_sim_step_count 1\n"));
        assert!(text.contains("# TYPE bvf_item_bytes histogram\n"));
        // Cumulative buckets: le="0" counts the zero, le="1" adds the 1,
        // le="7" includes the 5; +Inf carries the total.
        assert!(text.contains("bvf_item_bytes_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("bvf_item_bytes_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("bvf_item_bytes_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("bvf_item_bytes_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("bvf_item_bytes_sum 6\n"));
        assert!(text.contains("bvf_item_bytes_count 3\n"));
        // Registration order is exposition order, and the text is a pure
        // function of the aggregate.
        let hit = text.find("bvf_store_hit ").unwrap();
        let step = text.find("bvf_sim_step_nanos_total ").unwrap();
        assert!(hit < step);
        let text2 = sink.expose_text();
        // Timer nanos vary per run but not between two snapshots of the
        // same aggregate.
        assert_eq!(text, text2);
        // And the whole payload is a valid exposition: unique names, one
        // `# TYPE` per family, declared before its samples.
        validate_exposition(&text).expect("exposition must validate");
    }

    #[test]
    fn colliding_sanitized_names_are_rejected_at_registration() {
        // `store.hits` and `store_hits` are distinct registered names but
        // sanitize to the same exposed series — accepting both would emit
        // duplicate `# TYPE` lines, an exposition Prometheus rejects.
        let sink = MetricsSink::enabled();
        let _ = sink.counter("store.hits");
        let clash =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.counter("store_hits")));
        assert!(
            clash.is_err(),
            "sanitize-colliding counter must be rejected"
        );

        // Cross-kind collisions through derived series names too: a timer
        // `x` exposes `x_count`, which a counter named `x.count` would
        // duplicate.
        let sink = MetricsSink::enabled();
        let _ = sink.timer("x");
        let clash =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.counter("x.count")));
        assert!(clash.is_err(), "derived-series collision must be rejected");

        // A histogram owns its family name: a counter equal to it collides.
        let sink = MetricsSink::enabled();
        let _ = sink.histogram("bytes.in");
        let clash =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.counter("bytes_in")));
        assert!(
            clash.is_err(),
            "histogram family collision must be rejected"
        );

        // Distinct names that sanitize apart still register fine, and
        // re-registering the same name stays idempotent.
        let sink = MetricsSink::enabled();
        let a = sink.counter("store.hits");
        let _ = sink.counter("store.misses");
        assert_eq!(sink.counter("store.hits"), a);
        validate_exposition(&sink.expose_text()).expect("clean registry validates");
    }

    #[test]
    fn validate_exposition_catches_each_violation() {
        validate_exposition("").expect("empty exposition is valid");
        let ok = "# TYPE a counter\na 1\n# TYPE b histogram\nb_bucket{le=\"1\"} 1\n\
                  b_bucket{le=\"+Inf\"} 1\nb_sum 1\nb_count 1\n";
        validate_exposition(ok).expect("well-formed exposition");
        for (bad, why) in [
            (
                "# TYPE a counter\n# TYPE a counter\na 1\n",
                "duplicate # TYPE",
            ),
            ("a 1\n", "no preceding # TYPE"),
            ("# TYPE a counter\na 1\na 1\n", "duplicate series"),
            ("# TYPE a counter\na one\n", "non-numeric sample"),
            ("# TYPE a widget\na 1\n", "unknown metric kind"),
            ("# TYPE a counter\n9a 1\n", "illegal series name"),
        ] {
            let err = validate_exposition(bad).expect_err(why);
            assert!(
                err.contains(why),
                "expected {why:?} in the error, got {err:?}"
            );
        }
    }

    #[test]
    fn expose_text_is_empty_when_disabled() {
        assert_eq!(MetricsSink::disabled().expose_text(), "");
    }

    #[test]
    fn mean_helper() {
        assert_eq!(MetricValue::Counter(3).mean(), None);
        assert_eq!(
            MetricValue::Timer {
                nanos: 90,
                count: 3
            }
            .mean(),
            Some(30.0)
        );
        assert_eq!(
            MetricValue::Timer { nanos: 0, count: 0 }.mean(),
            None,
            "empty timer has no mean"
        );
    }
}
