//! Observability layer for the BVF reproduction: cheap metrics and
//! machine-readable telemetry, with zero dependencies beyond `std`.
//!
//! The workspace builds in environments where the crates.io registry is
//! unreachable, so this crate hand-rolls the three pieces a metrics stack
//! normally imports:
//!
//! * [`metrics`] — span timers, counters, and log2 histograms behind a
//!   [`MetricsSink`] handle. A *disabled* sink turns every record call into
//!   a branch on a `None` — the instrumented hot paths stay allocation-free
//!   and effectively free. An *enabled* sink hands out per-thread
//!   [`Recorder`]s that accumulate into plain local integers and flush into
//!   shared atomics, so cross-worker aggregation is lock-free and workers
//!   never contend on the hot path.
//! * [`jsonl`] — a JSON-lines record builder (hand-rolled serialization in
//!   the style of `bvf_sim::Table::to_json`) for run telemetry that other
//!   tools can parse.
//! * [`json`] — a minimal JSON parser, used to *validate* emitted telemetry
//!   (CI checks every line parses and carries the required keys) and to
//!   compare telemetry streams modulo their timing fields in tests.
//! * [`trace`] — hierarchical causal spans behind a [`TraceSink`] handle
//!   (same disabled/enabled regime split as [`metrics`]), merged in
//!   stable causal-id order and exported as Chrome trace-event JSON;
//!   [`trace::scrub_chrome`] strips the run-dependent fields so traces
//!   can be byte-compared across worker/shard configurations.
//!
//! The intended wiring: the campaign driver builds one enabled sink, every
//! simulator worker instruments its phases through a recorder, and the
//! driver snapshots the aggregate or emits JSON-lines records at the end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod trace;

pub use jsonl::Record;
pub use metrics::{
    validate_exposition, CounterId, HistogramId, MetricSnapshot, MetricValue, MetricsSink,
    Recorder, Span, TimerId,
};
pub use trace::{SpanGuard, TraceEvent, TraceRecorder, TraceSink};
