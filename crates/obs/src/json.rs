//! A minimal JSON parser (RFC 8259 subset, no external deps).
//!
//! Exists so telemetry *consumers inside this workspace* — the CI metrics
//! validator and the jobs-1-vs-jobs-N determinism test — can parse what
//! [`crate::jsonl`] emits without a serde dependency. Objects preserve key
//! order (a `Vec` of pairs, not a map), which keeps
//! [`Value::to_json_string`] deterministic and lets tests compare scrubbed
//! records textually.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Copy of this object without one top-level key (used to scrub
    /// run-dependent fields such as `"timing"` before comparing records).
    /// Non-objects return unchanged.
    pub fn without(&self, key: &str) -> Value {
        match self {
            Value::Object(pairs) => {
                Value::Object(pairs.iter().filter(|(k, _)| k != key).cloned().collect())
            }
            v => v.clone(),
        }
    }

    /// Re-serialize (keys in stored order; escaping as [`crate::jsonl`]).
    pub fn to_json_string(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => {
                if n.is_finite() {
                    format!("{n}")
                } else {
                    "null".into()
                }
            }
            Value::String(s) => format!("\"{}\"", crate::jsonl::escape(s)),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::to_json_string).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Object(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", crate::jsonl::escape(k), v.to_json_string()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Maximum container nesting depth [`parse`] accepts.
///
/// The parser is recursive-descent, so input depth is call-stack depth: an
/// untrusted body of a few thousand `[` bytes would otherwise overflow the
/// stack of whatever thread parses it — fatal for a long-running server
/// whose request path this parser sits on. 128 is far beyond any telemetry
/// or request payload in this workspace, and 128 frames are trivially safe
/// on the smallest thread stack Rust spawns.
pub const MAX_DEPTH: usize = 128;

/// Why parsing failed, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, capped at [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Run one container parser one level deeper, rejecting input nested
    /// past [`MAX_DEPTH`] *before* recursing — the depth cap must bound the
    /// call stack, not merely the accepted values.
    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Value, ParseError>,
    ) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = parse(r#"{"b":[1,2,{"c":null}],"a":"x"}"#).unwrap();
        let Value::Object(pairs) = &v else {
            panic!("not an object")
        };
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        assert_eq!(v.get("a").and_then(Value::as_str), Some("x"));
        let Some(Value::Array(items)) = v.get("b") else {
            panic!("b not an array")
        };
        assert_eq!(items[0], Value::Number(1.0));
        assert_eq!(items[2].get("c"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}"));
        // Surrogate pair for 😀 (U+1F600).
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "{\"a\":1} extra",
            "{'a':1}",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrip_through_to_json_string() {
        let src = r#"{"record":"app","n":3,"ok":true,"t":null,"xs":[1,2.5],"s":"q\"z"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_json_string(), src);
        // And the re-serialization parses back to the same value.
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn without_scrubs_one_key() {
        let v = parse(r#"{"a":1,"timing":{"wall_ns":9},"b":2}"#).unwrap();
        assert_eq!(v.without("timing").to_json_string(), r#"{"a":1,"b":2}"#);
        // Non-objects pass through.
        assert_eq!(Value::Null.without("x"), Value::Null);
    }

    #[test]
    fn nesting_at_the_depth_limit_parses() {
        // MAX_DEPTH nested arrays: the deepest `[` enters depth MAX_DEPTH.
        let src = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        let mut v = parse(&src).expect("depth exactly at the limit is legal");
        for _ in 0..MAX_DEPTH {
            let Value::Array(mut items) = v else {
                panic!("expected an array")
            };
            v = items.pop().expect("one element per level");
        }
        assert_eq!(v, Value::Number(1.0));
        // Mixed object/array nesting counts the same way.
        let src = format!(
            "{}null{}",
            r#"{"k":["#.repeat(MAX_DEPTH / 2),
            "]}".repeat(MAX_DEPTH / 2)
        );
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn nesting_past_the_depth_limit_is_an_error_not_a_crash() {
        // One level past the cap: a clean ParseError.
        let src = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&src).expect_err("depth past the limit must fail");
        assert_eq!(err.message, "nesting too deep");
        assert_eq!(err.offset, MAX_DEPTH, "fails at the first illegal bracket");

        // The attack shape: a request body that is nothing but open
        // brackets. Before the cap this overflowed the parsing thread's
        // stack; now it must return an error like any other bad input.
        for bomb in [
            "[".repeat(100_000),
            "{\"a\":".repeat(100_000),
            format!("{}{}", "[".repeat(50_000), "{\"x\":[".repeat(50_000)),
        ] {
            assert_eq!(
                parse(&bomb).expect_err("bracket bomb").message,
                "nesting too deep"
            );
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo — ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ✓"));
    }
}
