//! Design-space exploration: sweep the VS pivot lane, compare memory-cell
//! kinds, and scan supply voltages — the knobs DESIGN.md calls out for
//! ablation.
//!
//! Run with `cargo run --release --example design_explorer`.

use bvf::bits::BitCounts;
use bvf::circuit::{AccessEnergy, CellKind, ProcessNode, Supply};
use bvf::coders::{lane_hamming_profile, optimal_pivot, VsCoder};
use bvf::gpu::{CodingView, Gpu, GpuConfig};
use bvf::workloads::Application;

fn main() {
    // --- 1. Pivot-lane sweep on real simulated traffic --------------------
    // Collect warp samples by running one memory-heavy app and reusing its
    // lane profile (the simulator samples register writes).
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 4;
    let app = Application::by_code("OCE").expect("oceanFFT twin");
    let mut gpu = Gpu::new(cfg, vec![CodingView::baseline()]);
    let summary = app.run(&mut gpu);

    println!("Lane-Hamming profile for {app} (lower = better pivot):");
    for (lane, d) in summary.lane_profile.iter().enumerate() {
        let marker = if lane == summary.optimal_lane {
            " <= optimal"
        } else if lane == 21 {
            " <= paper's pivot"
        } else {
            ""
        };
        println!("  lane {lane:2}: {d:7.3}{marker}");
    }

    // --- 2. Pivot choice on synthetic similar warps ------------------------
    let warps: Vec<[u32; 32]> = (0..200u32)
        .map(|s| core::array::from_fn(|i| 0x4100_0000 | (s << 8) | (i as u32 & 7)))
        .collect();
    let profile = lane_hamming_profile(&warps);
    println!(
        "\nSynthetic warps: optimal pivot = lane {}, lane-0 distance {:.2}, lane-21 distance {:.2}",
        optimal_pivot(&warps),
        profile[0],
        profile[21]
    );
    let gain: Vec<(usize, u64)> = [0usize, 21]
        .iter()
        .map(|&p| {
            let vs = VsCoder::with_pivot(p);
            let mut ones = 0;
            for w in &warps {
                let mut enc = *w;
                vs.encode_warp(&mut enc);
                ones += BitCounts::of_words(&enc).ones;
            }
            (p, ones)
        })
        .collect();
    for (p, ones) in gain {
        println!("  pivot {p:2}: {ones} encoded 1-bits");
    }

    // --- 3. Cell kinds and voltage scan ------------------------------------
    println!("\nPer-bit access energy (fJ), 28nm, 128 cells/bitline:");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "cell", "volts", "read0", "read1", "write0", "write1"
    );
    for cell in CellKind::ALL {
        for mv in [1200, 1000, 800, 600] {
            let supply = Supply::new(f64::from(mv) / 1000.0);
            if !cell.operates_at(supply) {
                continue;
            }
            let e = AccessEnergy::of(cell, ProcessNode::N28, supply, 128);
            println!(
                "{:<10} {:>7.2}V {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                cell.to_string(),
                supply.volts(),
                e.read0,
                e.read1,
                e.write0,
                e.write1
            );
        }
    }
}
