//! Run a kernel on the simulated GPU and produce a full chip power report:
//! baseline (conventional 8T, no coders) vs the BVF design.
//!
//! Run with `cargo run --release --example vector_add_power`.

use bvf::circuit::{PState, ProcessNode};
use bvf::coders::Unit;
use bvf::gpu::{CodingView, Gpu, GpuConfig};
use bvf::isa::ir::{BufferId, Kernel, LaunchConfig, Op, Operand, Special, Stmt};
use bvf::power::{EnergyReport, PowerModel};

fn vecadd() -> Kernel {
    let mut k = Kernel::new("vecadd", 6);
    k.body.push(Stmt::op3(
        Op::Mov,
        0,
        Operand::Special(Special::GlobalTid),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(0)),
        1,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(1)),
        2,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body
        .push(Stmt::op3(Op::IAdd, 3, Operand::Reg(1), Operand::Reg(2)));
    k.body.push(Stmt::op4(
        Op::StGlobal(BufferId(2)),
        0,
        Operand::Reg(0),
        Operand::Imm(0),
        Operand::Reg(3),
    ));
    k
}

fn main() {
    let config = GpuConfig::baseline();
    let mut gpu = Gpu::new(config.clone(), CodingView::standard_set(0));

    let n = 16 * 1024;
    gpu.memory_mut()
        .add_buffer(BufferId(0), (0..n as u32).map(|i| i % 1000).collect());
    gpu.memory_mut()
        .add_buffer(BufferId(1), (0..n as u32).map(|i| (i * 7) % 1000).collect());
    gpu.memory_mut().add_buffer(BufferId(2), vec![0; n]);

    // One thread per element: 128 CTAs × 128 threads = 16K threads.
    let summary = gpu.launch(&vecadd(), LaunchConfig::new(128, 128));

    // Verify the kernel actually computed the right thing.
    let out = gpu.memory().buffer(BufferId(2)).expect("output buffer");
    assert!(out
        .iter()
        .enumerate()
        .all(|(i, &v)| v == (i as u32 % 1000) + ((i as u32 * 7) % 1000)));

    println!(
        "vecadd: {} instructions, {} cycles, L1D hit rate {:.1}%, L2 hit rate {:.1}%\n",
        summary.dynamic_instructions,
        summary.cycles,
        summary.l1d_hit_rate * 100.0,
        summary.l2_hit_rate * 100.0,
    );

    for node in ProcessNode::ALL {
        let model = PowerModel::new(node, PState::P0, config.clone());
        let report = EnergyReport::standard(&model, &summary);
        println!("--- {node} @ P0 ---");
        print!("{}", report.to_table());
        println!("per-unit reduction (baseline → bvf):");
        for unit in Unit::ALL {
            let red = report.unit_reduction("baseline", "bvf", unit);
            println!("  {unit:>4}: {:6.1}%", red * 100.0);
        }
        println!(
            "BVF units: {:.1}%   chip: {:.1}%\n",
            report.bvf_units_reduction("baseline", "bvf") * 100.0,
            report.chip_reduction("baseline", "bvf") * 100.0
        );
    }
}
