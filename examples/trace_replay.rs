//! The paper's original methodology, end to end: dump the raw access trace
//! of a kernel run, then re-derive all per-view statistics offline with the
//! trace parser — and check they match the online pipeline bit for bit.
//!
//! Run with `cargo run --release --example trace_replay`.

use bvf::coders::Unit;
use bvf::gpu::trace::replay;
use bvf::gpu::{CodingView, Gpu, GpuConfig};
use bvf::workloads::Application;

fn main() {
    let app = Application::by_code("BFS").expect("bfs twin");
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 4;
    let flit = cfg.noc_flit_bytes;
    let views = CodingView::standard_set(0x2000_0000_1000_0001);

    let mut gpu = Gpu::new(cfg, views.clone());
    gpu.enable_trace_log();
    let summary = app.run(&mut gpu);
    let log = gpu.take_trace_log().expect("trace logging was enabled");

    println!(
        "{app}: {} dynamic instructions produced {} trace events",
        summary.dynamic_instructions,
        log.len()
    );

    // Offline parse — the multi-GB-dump pipeline of the paper's §5, here in
    // memory.
    let offline = replay(&log, views, flit);

    let mut mismatches = 0;
    for (online_view, offline_view) in summary.views.iter().zip(&offline) {
        for unit in Unit::ALL {
            if online_view.unit(unit) != offline_view.unit(unit) {
                mismatches += 1;
            }
        }
        if online_view.noc != offline_view.noc {
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "online and offline statistics diverged!");

    let base = summary.view("baseline").unit(Unit::Reg);
    let bvf = summary.view("bvf").unit(Unit::Reg);
    println!(
        "online == offline for every unit and view. REG read 1-fraction: \
         baseline {:.1}% → bvf {:.1}%",
        base.read_bits.one_fraction() * 100.0,
        bvf.read_bits.one_fraction() * 100.0
    );
}
