//! Quickstart: encode data with the three BVF coders and see the
//! Hamming-weight gain (and therefore BVF-SRAM energy saving) directly.
//!
//! Run with `cargo run --release --example quickstart`.

use bvf::bits::BitCounts;
use bvf::circuit::{AccessEnergy, CellKind, ProcessNode, Supply};
use bvf::coders::{Coder, IsaCoder, NvCoder, VsCoder};

fn main() {
    // --- Narrow-value coder on typical application data -------------------
    // Small integers in wide words: the dominant GPU data pattern.
    let data: Vec<u32> = (0..1024u32).map(|i| (i * 37) % 5000).collect();
    let before = BitCounts::of_words(&data);

    let nv = NvCoder;
    let encoded: Vec<u32> = data.iter().map(|&w| nv.encode_u32(w)).collect();
    let after = BitCounts::of_words(&encoded);

    println!("NV coder on 1024 narrow integers:");
    println!("  raw     : {before}");
    println!("  encoded : {after}");

    // Exact reconstruction is the contract.
    let decoded: Vec<u32> = encoded.iter().map(|&w| nv.decode_u32(w)).collect();
    assert_eq!(decoded, data);

    // --- Value-similarity coder on a warp ---------------------------------
    let vs = VsCoder::for_registers(); // pivot lane 21 per the paper
    let mut lanes: [u32; 32] = core::array::from_fn(|i| 0x3f80_0000 + i as u32);
    let raw = BitCounts::of_words(&lanes);
    vs.encode_warp(&mut lanes);
    let enc = BitCounts::of_words(&lanes);
    println!("\nVS coder on one warp of similar floats:");
    println!("  raw     : {raw}");
    println!("  encoded : {enc}");
    vs.decode_warp(&mut lanes);
    assert_eq!(lanes[0], 0x3f80_0000);

    // --- ISA coder on an instruction stream -------------------------------
    let isa = IsaCoder::new(0x4818_0000_0007_0201); // paper's Pascal mask
    let instrs: Vec<u64> = (0..256u64).map(|i| i << 12 | 0x0201).collect();
    let raw: u64 = instrs.iter().map(|w| u64::from(w.count_ones())).sum();
    let enc: u64 = instrs
        .iter()
        .map(|&w| u64::from(isa.encode_instr(w).count_ones()))
        .sum();
    println!("\nISA coder on 256 instruction words:");
    println!("  raw ones     : {raw} / {}", 256 * 64);
    println!("  encoded ones : {enc} / {}", 256 * 64);

    // --- What the extra ones buy on BVF SRAM -------------------------------
    let cell = AccessEnergy::of(CellKind::BvfSram8T, ProcessNode::N28, Supply::NOMINAL, 128);
    let e_raw = cell.read_word(before.ones, before.zeros);
    let e_enc = cell.read_word(after.ones, after.zeros);
    println!("\nReading that buffer once from BVF-8T SRAM (28nm, 1.2V):");
    println!("  raw     : {e_raw:10.1} fJ");
    println!(
        "  encoded : {e_enc:10.1} fJ  ({:.1}% saved)",
        (1.0 - e_enc / e_raw) * 100.0
    );
}
