//! Derive ISA-preference masks (the Table 2 procedure) from the assembled
//! binaries of the 58 workloads, for every architecture generation, and
//! show the Hamming-weight gain on the instruction stream.
//!
//! Run with `cargo run --release --example mask_extraction`.

use bvf::coders::IsaCoder;
use bvf::isa::{assemble_kernel, derive_mask_for, Architecture};
use bvf::workloads::Application;

fn main() {
    let apps = Application::all();
    let kernels: Vec<_> = apps.iter().map(|a| a.kernel()).collect();

    println!(
        "{:<8} {:>6} {:>20} {:>20} {:>10} {:>10}",
        "arch", "cc", "published mask", "derived mask", "raw 1s%", "coded 1s%"
    );
    for arch in Architecture::ALL {
        let derived = derive_mask_for(arch, &kernels);
        let coder = IsaCoder::new(derived);

        let mut total_bits = 0u64;
        let mut raw_ones = 0u64;
        let mut coded_ones = 0u64;
        for k in &kernels {
            for w in assemble_kernel(k, arch) {
                total_bits += 64;
                raw_ones += u64::from(w.count_ones());
                coded_ones += u64::from(coder.encode_instr(w).count_ones());
            }
        }
        println!(
            "{:<8} {:>6} {:>#20x} {:>#20x} {:>9.1}% {:>9.1}%",
            arch.to_string(),
            arch.compute_capability(),
            arch.published_mask(),
            derived,
            raw_ones as f64 / total_bits as f64 * 100.0,
            coded_ones as f64 / total_bits as f64 * 100.0,
        );
    }

    println!(
        "\nThe published masks come from real NVIDIA binaries (paper Table 2); the\n\
         derived masks apply the same per-bit-position majority procedure to this\n\
         repository's synthetic encodings. Both are sparse (most positions prefer 0)\n\
         and XNOR-coding with the derived mask flips the instruction stream from\n\
         0-dominated to 1-dominated — the property the ISA coder exploits."
    );
}
