//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro (both `name: Type` and `name in strategy`
//! parameter forms), [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`],
//! [`prop_assume!`], [`prop_oneof!`], `any::<T>()`, `Just`,
//! `proptest::collection::vec`, and integer-range strategies.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! sampled inputs via the assert message), and the case count comes from
//! `PROPTEST_CASES` (default 64). Sampling is deterministic per test name,
//! so failures reproduce across runs.

use core::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG driving every strategy.

    /// Number of cases each property runs (`PROPTEST_CASES` overrides).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// splitmix64 generator, seeded from the test's name so every property
    /// sees a distinct but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            });
            Self(h)
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A source of values for one `proptest!` parameter.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// Box<dyn Strategy> is itself a strategy so `prop_oneof!` can mix
// heterogeneous strategy types with one value type.
impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Erase a strategy's concrete type (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted strategies ([`prop_oneof!`]).
pub struct OneOf<V>(pub Vec<Box<dyn Strategy<Value = V>>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as u64).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical whole-domain strategy (`any::<T>()` and the
/// `name: Type` form of `proptest!` parameters).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value, occasionally biased toward edge cases.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // 1-in-8 bias toward the values most likely to break code.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MIN];
                    EDGES[rng.below(4) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($($s:ident),+;)*) => {$(
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    )*};
}
impl_arbitrary_tuple! {
    A, B;
    A, B, C;
}

/// Whole-domain strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod strategy {
    //! Strategy combinators namespace (upstream parity).
    pub use super::{boxed, Just, OneOf, Strategy};
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s whose elements come from `elem` and whose length
    /// is uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, Just, Strategy,
    };
}

/// Define property tests. Parameters may be `name: Type` (sampled with
/// `any::<Type>()`) or `name in strategy`; each test body runs
/// [`test_runner::cases`] times with fresh samples.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let mut __proptest_rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __proptest_cases = $crate::test_runner::cases();
            let mut __proptest_case = 0u32;
            while __proptest_case < __proptest_cases {
                __proptest_case += 1;
                $crate::__proptest_bind!(__proptest_rng, ($($params)*), $body);
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: bind `proptest!` parameters, then run the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, (), $body:block) => { $body };
    ($rng:ident, ($name:ident in $strat:expr $(,)?), $body:block) => {{
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, ($name:ident in $strat:expr, $($rest:tt)+), $body:block) => {{
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)+), $body)
    }};
    ($rng:ident, ($name:ident : $ty:ty $(,)?), $body:block) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $body
    }};
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)+), $body:block) => {{
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)+), $body)
    }};
}

/// Assert within a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it must appear directly in the test body (the
/// only place upstream allows it to run, too).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_strategy_params_mix(a: u32, b in 5u64..10, v in crate::collection::vec(any::<u8>(), 1..4)) {
            let _ = a;
            prop_assert!((5..10).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_skips_cases(x: u8) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just_work(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = crate::test_runner::TestRng::deterministic("endpoints");
        let s = 0u8..=1;
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
