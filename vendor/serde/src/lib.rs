//! Offline stand-in for `serde`.
//!
//! This workspace builds in environments where the crates.io registry is
//! unreachable, so external dependencies are vendored as minimal shims. The
//! codebase only *annotates* types with `#[derive(Serialize, Deserialize)]`
//! (no code actually serializes through serde), so marker traits with
//! blanket impls are sufficient: every type is trivially `Serialize` and
//! `Deserialize`, and the derives (see `serde_derive`) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// `serde::de` namespace subset.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// `serde::ser` namespace subset.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
