//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the bench crate uses — `Criterion`,
//! `benchmark_group`/`bench_function`/`throughput`/`sample_size`,
//! `black_box`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock harness: per benchmark it
//! calibrates an iteration count, takes `sample_size` samples, and prints
//! the median time (plus throughput when declared).
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! binaries) every benchmark body runs exactly once so the suite stays fast
//! while still smoke-testing the bench code.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: measure for real.
    Measure { sample_size: usize },
    /// `cargo test`: run the body once to make sure it works.
    Smoke,
}

impl Bencher {
    /// Time `f`, storing the per-iteration median for the caller to report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
                self.last_ns = 0.0;
            }
            Mode::Measure { sample_size } => {
                // Calibrate: grow the batch until one batch costs >= 1 ms.
                let mut batch = 1u64;
                loop {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    if t.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                        break;
                    }
                    batch *= 2;
                }
                let mut samples: Vec<f64> = (0..sample_size.max(1))
                    .map(|_| {
                        let t = Instant::now();
                        for _ in 0..batch {
                            black_box(f());
                        }
                        t.elapsed().as_secs_f64() * 1e9 / batch as f64
                    })
                    .collect();
                samples.sort_by(|a, b| a.total_cmp(b));
                self.last_ns = samples[samples.len() / 2];
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = throughput
        .map(|t| match t {
            Throughput::Bytes(b) => {
                format!("  {:>10.1} MiB/s", b as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            Throughput::Elements(e) => format!("  {:>10.1} Melem/s", e as f64 / ns * 1e9 / 1e6),
        })
        .unwrap_or_default();
    println!("bench: {id:<50} {:>12}/iter{rate}", fmt_ns(ns));
}

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes `harness = false` bench targets with `--test` under
        // `cargo test` and with `--bench` under `cargo bench`.
        let smoke = std::env::args().any(|a| a == "--test");
        Self {
            mode: if smoke {
                Mode::Smoke
            } else {
                Mode::Measure { sample_size: 20 }
            },
        }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        if let Mode::Measure { sample_size } = &mut self.mode {
            *sample_size = n;
        }
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mode: self.mode,
            last_ns: 0.0,
        };
        f(&mut b);
        if self.mode != Mode::Smoke {
            report(&id, b.last_ns, None);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if let Mode::Measure { sample_size } = &mut self.criterion.mode {
            *sample_size = n;
        }
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            mode: self.criterion.mode,
            last_ns: 0.0,
        };
        f(&mut b);
        if self.criterion.mode != Mode::Smoke {
            report(&id, b.last_ns, self.throughput);
        }
        self
    }

    /// Finish the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one group runner, mirroring criterion's
/// plain and `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_in_smoke_mode() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(128));
            g.sample_size(10);
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1, "smoke mode must run the body exactly once");
    }

    #[test]
    fn measure_mode_times_cheap_work() {
        let mut c = Criterion {
            mode: Mode::Measure { sample_size: 3 },
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
