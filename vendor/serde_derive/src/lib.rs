//! No-op derive macros standing in for `serde_derive` when the crates.io
//! registry is unreachable.
//!
//! The real derives generate `Serialize`/`Deserialize` impls; the vendored
//! `serde` shim instead provides blanket impls, so these derives only need
//! to accept the syntax (including `#[serde(...)]` helper attributes) and
//! emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; the blanket impl in the `serde` shim applies.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing; the blanket impl in the `serde` shim applies.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
