//! Offline stand-in for `rand` 0.8.
//!
//! Implements the API subset this workspace uses — `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `rngs::{SmallRng, StdRng}` — on top
//! of xoshiro256++ seeded through splitmix64. The generators are fully
//! deterministic for a given seed, which is all the workloads require: every
//! simulation, test, and benchmark must see identical data for one seed.
//!
//! The streams differ from upstream `rand`'s (different algorithms), but no
//! test in this workspace pins exact values — only statistical properties.

use core::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform random 32/64-bit words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with splitmix64 like upstream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ state shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is a fixed point for xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Self { s }
    }
}

/// The named generators `rand` exposes.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (xoshiro256++ here; upstream uses xoshiro, too).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            Self(Xoshiro256::from_seed(seed))
        }
    }

    /// Cryptographically-strong upstream; deterministic xoshiro here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            Self(Xoshiro256::from_seed(seed))
        }
    }
}

/// Types that `Rng::gen` can produce uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `gen_range` can sample uniformly from half-open/inclusive ranges.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform value in `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform value in `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high as u64).wrapping_sub(low as u64);
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as u64).wrapping_add(v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high as u64).wrapping_sub(low as u64) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (low as u64).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                low + <$t>::draw(rng) * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                low + <$t>::draw(rng) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts. Single blanket impls per range
/// shape (as upstream) so the element type unifies with the output type
/// during inference.
pub trait SampleRange<T> {
    /// Uniformly sample the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-6i32..=6);
            assert!((-6..=6).contains(&w));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 13];
        for _ in 0..10_000 {
            seen[(rng.gen_range(-6i32..=6) + 6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range misses values");
    }

    #[test]
    fn uniform_bits_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ones: u32 = (0..4096).map(|_| rng.gen::<u32>().count_ones()).sum();
        let frac = f64::from(ones) / (4096.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "one-fraction {frac}");
    }
}
