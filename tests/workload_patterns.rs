//! Each kernel-template family must exercise the hardware units its real
//! counterparts exercise — otherwise the per-unit energy attribution of
//! Figs. 16/17 would be built on the wrong traffic.

use bvf::coders::Unit;
use bvf::gpu::{CodingView, Gpu, GpuConfig, TraceSummary};
use bvf::workloads::Application;

fn run(code: &str) -> TraceSummary {
    let app = Application::by_code(code).unwrap_or_else(|| panic!("missing app {code}"));
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 2;
    let mut gpu = Gpu::new(cfg, vec![CodingView::baseline()]);
    app.run(&mut gpu)
}

#[test]
fn texture_app_uses_l1t_and_l1c() {
    let s = run("IMD"); // imageDenoising: texture filter template
    let v = s.view("baseline");
    assert!(v.unit(Unit::L1t).reads > 0, "texture cache untouched");
    assert!(v.unit(Unit::L1c).reads > 0, "constant cache untouched");
}

#[test]
fn histogram_app_uses_shared_memory() {
    let s = run("HST");
    let v = s.view("baseline");
    assert!(v.unit(Unit::Sme).reads > 0);
    assert!(v.unit(Unit::Sme).writes > 0);
    assert!(s.smem_conflict_cycles > 0, "histogram must bank-conflict");
}

#[test]
fn reduction_app_synchronizes_and_spares_the_pivot() {
    let s = run("RED");
    let v = s.view("baseline");
    assert!(v.unit(Unit::Sme).accesses() > 0);
    // Tree-reduction masks are prefixes (`tid < stride`), which never
    // include pivot lane 21 once the stride drops below 32 — so VS needs no
    // dummy movs here. This is the §4.2 observation from the other side:
    // divergence concentrates on the *leading* lanes, which is precisely
    // why a high middle lane survives as the pivot.
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 2;
    let mut gpu = Gpu::new(cfg, CodingView::standard_set(0));
    let app = Application::by_code("RED").unwrap();
    let s2 = app.run(&mut gpu);
    assert_eq!(s2.view("bvf").dummy_movs, 0);
}

#[test]
fn strided_app_is_memory_divergent() {
    // TRA (transpose twin) strides by 33 words: every active lane touches a
    // different line, so L1D accesses per instruction far exceed the
    // coalesced streaming case.
    let strided = run("TRA");
    let streaming = run("VAD");
    let per_instr = |s: &TraceSummary| {
        s.view("baseline").unit(Unit::L1d).accesses() as f64 / s.dynamic_instructions as f64
    };
    assert!(
        per_instr(&strided) > 3.0 * per_instr(&streaming),
        "strided {} vs streaming {}",
        per_instr(&strided),
        per_instr(&streaming)
    );
}

#[test]
fn gather_app_misses_more_than_stencil() {
    let gather = run("BFS");
    let stencil = run("STN");
    assert!(
        gather.l1d_hit_rate < stencil.l1d_hit_rate,
        "gather {} vs stencil {}",
        gather.l1d_hit_rate,
        stencil.l1d_hit_rate
    );
}

#[test]
fn compute_bound_app_touches_memory_rarely() {
    let compute = run("CP");
    let memory = run("TRD");
    let intensity = |s: &TraceSummary| {
        s.view("baseline").unit(Unit::L1d).accesses() as f64 / s.dynamic_instructions as f64
    };
    assert!(intensity(&compute) < 0.25 * intensity(&memory));
}

#[test]
fn memory_intensive_apps_produce_dram_traffic() {
    let s = run("OCE");
    assert!(s.dram.requests > 0, "no DRAM traffic from a streaming app");
    assert!(s.dram.busy_cycles > 0);
    // Streaming fills are sequential; even with lines striped across six
    // channels (≤3 same-row lines per channel per 2KB row) the row-buffer
    // hit rate stays well above the irregular-gather case.
    assert!(
        s.dram.row_hit_rate() > 0.3,
        "streaming row-hit rate {}",
        s.dram.row_hit_rate()
    );
    let gather = run("BFS");
    assert!(
        s.dram.row_hit_rate() > gather.dram.row_hit_rate(),
        "streaming ({:.2}) must beat gather ({:.2}) on row hits",
        s.dram.row_hit_rate(),
        gather.dram.row_hit_rate()
    );
}

#[test]
fn divergent_app_injects_dummy_movs_under_vs() {
    let app = Application::by_code("NQU").unwrap();
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 2;
    let mut gpu = Gpu::new(cfg, CodingView::standard_set(0));
    let s = app.run(&mut gpu);
    assert!(s.view("bvf").dummy_movs > 0);
    assert_eq!(s.view("baseline").dummy_movs, 0);
}
