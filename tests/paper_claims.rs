//! Shape assertions against the paper's claims, on a reduced campaign
//! (the full-suite numbers come from the `reproduce` binary and are
//! recorded in `EXPERIMENTS.md`).

use std::sync::OnceLock;

use bvf::circuit::ProcessNode;
use bvf::gpu::GpuConfig;
use bvf::isa::Architecture;
use bvf::sim::figures::{circuit, energy, overhead, profile, sensitivity};
use bvf::sim::Campaign;
use bvf::workloads::Application;

fn campaign() -> &'static Campaign {
    static C: OnceLock<Campaign> = OnceLock::new();
    C.get_or_init(Campaign::smoke)
}

#[test]
fn fig05_06_bvf_asymmetry_holds_on_both_nodes() {
    for node in ProcessNode::ALL {
        let t = circuit::fig05_06(node);
        let r0 = t.get("BVF-8T@1.20V", "read0").unwrap();
        let r1 = t.get("BVF-8T@1.20V", "read1").unwrap();
        let w0 = t.get("BVF-8T@1.20V", "write0").unwrap();
        let w1 = t.get("BVF-8T@1.20V", "write1").unwrap();
        assert!(r1 < r0 && w1 < w0, "{node}: BVF asymmetry missing");
        // §3.1: a write miss costs about double a conventional write.
        let conv_w = t.get("Conv-8T@1.20V", "write0").unwrap();
        assert!(
            (1.8..=2.4).contains(&(w0 / conv_w)),
            "{node}: {}",
            w0 / conv_w
        );
    }
}

#[test]
fn fig08_09_narrow_values_dominate() {
    let f8 = profile::fig08(campaign());
    // The paper measures ≈9 leading sign-equal bits on average.
    let lead = f8.get("AVG", "leading bits").unwrap();
    assert!((6.0..=20.0).contains(&lead), "avg leading bits {lead}");

    let f9 = profile::fig09(campaign());
    // ≈22 of 32 bits are zero on average; zeros must dominate.
    let zeros = f9.get("AVG", "zero bits").unwrap();
    assert!(zeros > 16.0, "zero bits per word {zeros} do not dominate");
}

#[test]
fn fig11_middle_lanes_beat_edge_lanes() {
    let t = profile::fig11(campaign());
    let d = |lane: usize| t.rows[lane].values[0];
    let middle_best = (8..24).map(d).fold(f64::MAX, f64::min);
    assert!(
        middle_best <= d(0) && middle_best <= d(31),
        "middle lanes must have the smallest mean Hamming distance"
    );
}

#[test]
fn fig14_and_table2_masks_are_sparse_and_distinct() {
    let apps = Application::all();
    let t = profile::fig14(&apps, Architecture::Pascal);
    let below_half = t.rows.iter().filter(|r| r.values[0] < 0.5).count();
    assert!(
        below_half > 32,
        "most instruction bit positions must prefer 0"
    );

    let kernels: Vec<_> = apps.iter().map(|a| a.kernel()).collect();
    let masks: Vec<u64> = Architecture::ALL
        .iter()
        .map(|&a| bvf::isa::derive_mask_for(a, &kernels))
        .collect();
    assert!(
        masks.windows(2).any(|w| w[0] != w[1]),
        "masks must change across ISA generations"
    );
}

#[test]
fn fig16_component_reductions_have_the_papers_shape() {
    let t = energy::fig16_17(campaign(), ProcessNode::N28);
    // Data coders cut the register file substantially.
    assert!(t.get("REG", "bvf").unwrap() < 0.75);
    // NV covers SME; VS does not (§4.2.2-C).
    assert!(t.get("SME", "nv").unwrap() < t.get("SME", "vs").unwrap());
    // Only ISA helps the instruction cache.
    assert!(t.get("L1I", "isa").unwrap() < t.get("L1I", "nv").unwrap());
    // The combined design is at least as good as each coder on its units.
    for unit in ["REG", "L1D", "L2"] {
        let bvf = t.get(unit, "bvf").unwrap();
        let nv = t.get(unit, "nv").unwrap();
        assert!(bvf <= nv + 0.05, "{unit}: bvf {bvf} vs nv {nv}");
    }
}

#[test]
fn fig18_19_chip_reductions_in_band_and_ordered() {
    let t28 = energy::fig18_19(campaign(), ProcessNode::N28);
    let t40 = energy::fig18_19(campaign(), ProcessNode::N40);
    let r28 = t28.get("AVG", "chip red %").unwrap();
    let r40 = t40.get("AVG", "chip red %").unwrap();
    // Paper: 21% (28nm) and 24% (40nm). Allow a generous band on the
    // reduced campaign; the full suite lands within ±2 points.
    assert!((10.0..=35.0).contains(&r28), "28nm chip reduction {r28}%");
    assert!((12.0..=38.0).contains(&r40), "40nm chip reduction {r40}%");
    assert!(
        r40 > r28,
        "40nm must save more than 28nm (paper: 24% vs 21%)"
    );

    // Memory-intensive beats compute-intensive (Fig. 18 narrative).
    let mem = t40.get("BFS", "chip red %").unwrap();
    let comp = t40.get("BLA", "chip red %").unwrap();
    assert!(mem > comp, "BFS {mem}% vs BLA {comp}%");
}

#[test]
fn fig20_dvfs_keeps_the_benefit() {
    let t = sensitivity::fig20(campaign());
    for row in &t.rows {
        let red = row.values[2];
        assert!(
            (5.0..=45.0).contains(&red),
            "{}: reduction {red}% lost under DVFS",
            row.label
        );
    }
}

#[test]
fn fig23_cell_ordering_matches_paper() {
    let t = sensitivity::fig23(campaign());
    for col in ["28nm", "40nm"] {
        let sixt = t.get("6T @1.2V", col).unwrap();
        let conv = t.get("Conv-8T @1.2V", col).unwrap();
        let bvf = t.get("BVF-8T @1.2V", col).unwrap();
        let bvf_nt = t.get("BVF-8T @0.6V", col).unwrap();
        assert!(bvf < conv && conv < sixt, "{col}: ordering broken");
        assert!(bvf_nt < bvf, "{col}: near-threshold must add savings");
        // Paper: BVF-8T saves ~31.6%/32.7% of the chip vs 6T at 1.2V.
        let saving = (1.0 - bvf / sixt) * 100.0;
        assert!(
            (18.0..=45.0).contains(&saving),
            "{col}: vs-6T saving {saving}%"
        );
    }
}

#[test]
fn overhead_is_negligible() {
    let t = overhead::overhead_table(&GpuConfig::baseline());
    for node in ["28nm", "40nm"] {
        let pct = t.get(node, "die area %").unwrap();
        assert!(pct < 0.15, "{node}: coder area {pct}% of the die");
    }
}

#[test]
fn six_t_bvf_fails_beyond_16_cells() {
    let t = circuit::table_6t_stability();
    assert_eq!(t.get("16 cells", "28nm flips"), Some(0.0));
    assert_eq!(t.get("17 cells", "28nm flips"), Some(1.0));
}
