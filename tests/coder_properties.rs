//! Cross-crate property tests: coder composition under the BVF-space rules,
//! and agreement between the simulator's coding views and manual encoding.

use bvf::coders::{coders_for, Coder, CoderKind, IsaCoder, NvCoder, Unit, VsCoder};
use proptest::prelude::*;

proptest! {
    /// §3.3 property II: overlapping spaces reconstruct exactly — the full
    /// data-side composition (NV per word, then VS over the line) is
    /// invertible for any data and any pivot.
    #[test]
    fn nv_then_vs_roundtrips(words: Vec<u32>, pivot in 0usize..32) {
        let nv = NvCoder;
        let vs = VsCoder::with_pivot(pivot);
        let original = words.clone();
        let mut data = words;
        nv.encode_words(&mut data);
        vs.encode_block(&mut data);
        vs.decode_block(&mut data);
        nv.decode_words(&mut data);
        prop_assert_eq!(data, original);
    }

    /// The decoders must also compose in the *reverse* order of the
    /// encoders; applying them in the wrong order generally corrupts data,
    /// which is why the space rules pin the port ordering.
    #[test]
    fn wrong_decode_order_is_detected(seed: u64) {
        let nv = NvCoder;
        let vs = VsCoder::for_cache_lines();
        let mut x = seed | 1;
        let original: Vec<u32> = (0..32)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 32) as u32
            })
            .collect();
        let mut data = original.clone();
        nv.encode_words(&mut data);
        vs.encode_block(&mut data);
        // Wrong order: NV first, then VS.
        let mut wrong = data.clone();
        nv.decode_words(&mut wrong);
        vs.decode_block(&mut wrong);
        // Right order always works.
        vs.decode_block(&mut data);
        nv.decode_words(&mut data);
        prop_assert_eq!(&data, &original);
        // The wrong order must not silently produce the same result unless
        // the transforms commute on this input (possible but rare); either
        // way the correct path is what the architecture uses.
        let _ = wrong;
    }

    /// Instruction-side and data-side coders never share payloads, so a
    /// combined "space crossing" — ISA on instruction words, NV+VS on data
    /// words — reconstructs both streams.
    #[test]
    fn mixed_streams_reconstruct(instrs: Vec<u64>, data: Vec<u32>, mask: u64) {
        let isa = IsaCoder::new(mask);
        let nv = NvCoder;
        let vs = VsCoder::for_cache_lines();

        let mut i_enc = instrs.clone();
        isa.encode_stream(&mut i_enc);
        let mut d_enc = data.clone();
        nv.encode_words(&mut d_enc);
        vs.encode_block(&mut d_enc);

        isa.decode_stream(&mut i_enc);
        vs.decode_block(&mut d_enc);
        nv.decode_words(&mut d_enc);
        prop_assert_eq!(i_enc, instrs);
        prop_assert_eq!(d_enc, data);
    }

    /// NV strictly increases (or preserves) the Hamming weight of any word
    /// whose payload bits are 0-majority — the statistical precondition the
    /// paper establishes in Figs. 8/9.
    #[test]
    fn nv_helps_zero_majority_words(w in 0u32..=0x7fff_ffff) {
        prop_assume!(w.count_ones() <= 15); // 0-majority in the low 31 bits
        prop_assert!(NvCoder.encode_u32(w).count_ones() >= w.count_ones());
    }
}

#[test]
fn table1_spaces_route_the_right_coders() {
    // Data units: NV everywhere, VS everywhere except SME.
    assert_eq!(
        coders_for(Unit::Reg, false),
        vec![CoderKind::Nv, CoderKind::Vs]
    );
    assert_eq!(coders_for(Unit::Sme, false), vec![CoderKind::Nv]);
    // Instruction units: ISA only.
    assert_eq!(coders_for(Unit::Ifb, true), vec![CoderKind::Isa]);
    assert_eq!(coders_for(Unit::L1i, true), vec![CoderKind::Isa]);
    // Shared media carry both streams with the respective coders.
    assert_eq!(
        coders_for(Unit::Noc, false),
        vec![CoderKind::Nv, CoderKind::Vs]
    );
    assert_eq!(coders_for(Unit::Noc, true), vec![CoderKind::Isa]);
}
