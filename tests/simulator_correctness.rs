//! Functional correctness of the SIMT simulator against CPU references:
//! if the simulator computed wrong values, every bit statistic downstream
//! would be meaningless.

use bvf::gpu::{CodingView, Gpu, GpuConfig};
use bvf::isa::ir::{
    BufferId, CmpOp, Cond, Instr, Kernel, LaunchConfig, Op, Operand, Special, Stmt,
};

fn gpu() -> Gpu {
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 3;
    Gpu::new(cfg, vec![CodingView::baseline()])
}

#[test]
fn saxpy_matches_cpu() {
    // y[i] = a*x[i] + y[i] over f32 data.
    let a = 2.5f32;
    let mut k = Kernel::new("saxpy", 6);
    k.body.push(Stmt::op3(
        Op::Mov,
        0,
        Operand::Special(Special::GlobalTid),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(0)),
        1,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(1)),
        2,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op4(
        Op::FFma,
        3,
        Operand::Reg(1),
        Operand::imm_f32(a),
        Operand::Reg(2),
    ));
    k.body.push(Stmt::op4(
        Op::StGlobal(BufferId(1)),
        0,
        Operand::Reg(0),
        Operand::Imm(0),
        Operand::Reg(3),
    ));

    let n = 1024usize;
    let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    let y: Vec<f32> = (0..n).map(|i| 100.0 - i as f32).collect();
    let mut g = gpu();
    g.memory_mut()
        .add_buffer(BufferId(0), x.iter().map(|v| v.to_bits()).collect());
    g.memory_mut()
        .add_buffer(BufferId(1), y.iter().map(|v| v.to_bits()).collect());
    g.launch(&k, LaunchConfig::new(32, 32));

    let out = g.memory().buffer(BufferId(1)).unwrap();
    for i in 0..n {
        let expected = x[i].mul_add(a, y[i]);
        assert_eq!(f32::from_bits(out[i]), expected, "element {i}");
    }
}

#[test]
fn block_sum_reduction_matches_cpu() {
    // Per-CTA shared-memory tree reduction over 128 elements.
    let mut k = Kernel::new("block_sum", 8);
    k.shared_words = 128;
    k.body.push(Stmt::op3(
        Op::Mov,
        0,
        Operand::Special(Special::GlobalTid),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::Mov,
        5,
        Operand::Special(Special::TidX),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(0)),
        1,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op4(
        Op::StShared,
        0,
        Operand::Reg(5),
        Operand::Imm(0),
        Operand::Reg(1),
    ));
    k.body.push(Stmt::I(Instr::new(
        Op::Bar,
        0,
        Operand::Imm(0),
        Operand::Imm(0),
    )));
    for stride in [64u32, 32, 16, 8, 4, 2, 1] {
        k.body.push(Stmt::If {
            cond: Cond {
                a: Operand::Reg(5),
                op: CmpOp::Lt,
                b: Operand::Imm(stride),
            },
            then: vec![
                Stmt::op3(Op::IAdd, 6, Operand::Reg(5), Operand::Imm(stride)),
                Stmt::op3(Op::LdShared, 2, Operand::Reg(6), Operand::Imm(0)),
                Stmt::op3(Op::LdShared, 3, Operand::Reg(5), Operand::Imm(0)),
                Stmt::op3(Op::IAdd, 3, Operand::Reg(3), Operand::Reg(2)),
                Stmt::op4(
                    Op::StShared,
                    0,
                    Operand::Reg(5),
                    Operand::Imm(0),
                    Operand::Reg(3),
                ),
            ],
            els: vec![],
        });
        k.body.push(Stmt::I(Instr::new(
            Op::Bar,
            0,
            Operand::Imm(0),
            Operand::Imm(0),
        )));
    }
    k.body.push(Stmt::If {
        cond: Cond {
            a: Operand::Reg(5),
            op: CmpOp::Eq,
            b: Operand::Imm(0),
        },
        then: vec![
            Stmt::op3(Op::LdShared, 1, Operand::Imm(0), Operand::Imm(0)),
            Stmt::op4(
                Op::StGlobal(BufferId(1)),
                0,
                Operand::Special(Special::CtaIdX),
                Operand::Imm(0),
                Operand::Reg(1),
            ),
        ],
        els: vec![],
    });

    let ctas = 6u32;
    let n = (ctas * 128) as usize;
    let input: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
    let mut g = gpu();
    g.memory_mut().add_buffer(BufferId(0), input.clone());
    g.memory_mut()
        .add_buffer(BufferId(1), vec![0; ctas as usize]);
    g.launch(&k, LaunchConfig::new(ctas, 128));

    let out = g.memory().buffer(BufferId(1)).unwrap();
    for cta in 0..ctas as usize {
        let expected: u32 = input[cta * 128..(cta + 1) * 128]
            .iter()
            .fold(0u32, |a, &b| a.wrapping_add(b));
        assert_eq!(out[cta], expected, "CTA {cta}");
    }
}

#[test]
fn divergent_abs_matches_cpu() {
    // out[i] = |in[i]| via a divergent branch on the sign.
    let mut k = Kernel::new("abs", 6);
    k.body.push(Stmt::op3(
        Op::Mov,
        0,
        Operand::Special(Special::GlobalTid),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(0)),
        1,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::If {
        cond: Cond {
            a: Operand::Reg(1),
            op: CmpOp::Lt,
            b: Operand::Imm(0),
        },
        then: vec![Stmt::op3(Op::ISub, 1, Operand::Imm(0), Operand::Reg(1))],
        els: vec![],
    });
    k.body.push(Stmt::op4(
        Op::StGlobal(BufferId(1)),
        0,
        Operand::Reg(0),
        Operand::Imm(0),
        Operand::Reg(1),
    ));

    let n = 512usize;
    let input: Vec<u32> = (0..n).map(|i| (i as i32 - 256) as u32).collect();
    let mut g = gpu();
    g.memory_mut().add_buffer(BufferId(0), input.clone());
    g.memory_mut().add_buffer(BufferId(1), vec![0; n]);
    g.launch(&k, LaunchConfig::new(16, 32));

    let out = g.memory().buffer(BufferId(1)).unwrap();
    for i in 0..n {
        assert_eq!(out[i] as i32, (input[i] as i32).abs(), "element {i}");
    }
}

#[test]
fn gather_follows_indices() {
    // out[i] = data[idx[i]]
    let mut k = Kernel::new("gather1", 6);
    k.body.push(Stmt::op3(
        Op::Mov,
        0,
        Operand::Special(Special::GlobalTid),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(0)),
        1,
        Operand::Reg(0),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op3(
        Op::LdGlobal(BufferId(1)),
        2,
        Operand::Reg(1),
        Operand::Imm(0),
    ));
    k.body.push(Stmt::op4(
        Op::StGlobal(BufferId(2)),
        0,
        Operand::Reg(0),
        Operand::Imm(0),
        Operand::Reg(2),
    ));

    let n = 256usize;
    let idx: Vec<u32> = (0..n as u32).map(|i| (i * 37) % n as u32).collect();
    let data: Vec<u32> = (0..n as u32).map(|i| 10_000 + i).collect();
    let mut g = gpu();
    g.memory_mut().add_buffer(BufferId(0), idx.clone());
    g.memory_mut().add_buffer(BufferId(1), data.clone());
    g.memory_mut().add_buffer(BufferId(2), vec![0; n]);
    g.launch(&k, LaunchConfig::new(8, 32));

    let out = g.memory().buffer(BufferId(2)).unwrap();
    for i in 0..n {
        assert_eq!(out[i], data[idx[i] as usize], "element {i}");
    }
}
