//! End-to-end pipeline invariants: workload → simulator → power model.

use std::sync::OnceLock;

use bvf::circuit::{PState, ProcessNode};
use bvf::coders::Unit;
use bvf::gpu::{CodingView, Gpu, GpuConfig, TraceSummary};
use bvf::power::{DesignPoint, EnergyReport, PowerModel};
use bvf::workloads::Application;

fn config() -> GpuConfig {
    let mut cfg = GpuConfig::baseline();
    cfg.sms = 2;
    cfg
}

fn summary() -> &'static TraceSummary {
    static S: OnceLock<TraceSummary> = OnceLock::new();
    S.get_or_init(|| {
        let app = Application::by_code("OCE").expect("oceanFFT twin");
        let mut gpu = Gpu::new(config(), CodingView::standard_set(0x2000_0000_1000_0001));
        app.run(&mut gpu)
    })
}

#[test]
fn coding_views_change_bits_but_never_counts() {
    let s = summary();
    let base = s.view("baseline");
    for name in ["nv", "vs", "isa", "bvf"] {
        let v = s.view(name);
        for unit in Unit::ALL {
            let b = base.unit(unit);
            let c = v.unit(unit);
            assert_eq!(b.reads, c.reads, "{name}/{unit}: read count changed");
            assert_eq!(b.writes, c.writes, "{name}/{unit}: write count changed");
            assert_eq!(b.fills, c.fills, "{name}/{unit}: fill count changed");
            assert_eq!(
                b.read_bits.total(),
                c.read_bits.total(),
                "{name}/{unit}: bit volume changed"
            );
        }
        assert_eq!(
            base.noc.transfers, v.noc.transfers,
            "{name}: NoC transfer count changed"
        );
    }
}

#[test]
fn bvf_view_raises_one_fraction_on_every_trafficked_unit() {
    let s = summary();
    let base = s.view("baseline");
    let bvf = s.view("bvf");
    for unit in Unit::ALL {
        let b = base.unit(unit);
        let v = bvf.unit(unit);
        if b.read_bits.total() == 0 {
            continue;
        }
        assert!(
            v.read_bits.one_fraction() > b.read_bits.one_fraction(),
            "{unit}: {:.3} !> {:.3}",
            v.read_bits.one_fraction(),
            b.read_bits.one_fraction()
        );
    }
}

#[test]
fn energy_report_is_consistent_across_pstates_and_nodes() {
    let s = summary();
    for node in ProcessNode::ALL {
        let mut last_total = f64::MAX;
        for pstate in PState::ALL {
            let model = PowerModel::new(node, pstate, config());
            let report =
                EnergyReport::evaluate(&model, s, &[DesignPoint::baseline(), DesignPoint::bvf()]);
            let base = report.point("baseline").total_fj();
            let bvf = report.point("bvf").total_fj();
            assert!(bvf < base, "{node} {pstate}: BVF must win");
            assert!(
                base < last_total,
                "{node} {pstate}: lower P-state must use less energy"
            );
            last_total = base;
            // Energy is finite and positive everywhere.
            for p in &report.points {
                assert!(p.total_fj().is_finite() && p.total_fj() > 0.0);
            }
        }
    }
}

#[test]
fn per_unit_energies_sum_to_the_totals() {
    let s = summary();
    let model = PowerModel::new(ProcessNode::N40, PState::P0, config());
    let report = EnergyReport::evaluate(&model, s, &[DesignPoint::bvf()]);
    let p = &report.points[0];
    let unit_sum: f64 = Unit::ALL.iter().map(|&u| p.unit_fj(u)).sum();
    assert!((unit_sum - p.bvf_units_fj()).abs() < 1e-6 * unit_sum);
    let total = p.bvf_units_fj() + p.nonbvf_fj + p.overhead_fj;
    assert!((total - p.total_fj()).abs() < 1e-6 * total);
}

#[test]
fn every_application_runs_on_the_full_registry() {
    // One pass over all 58 apps with a single view on a small GPU: every
    // app must execute instructions and touch the register file.
    let mut failures = Vec::new();
    for app in Application::all() {
        let mut gpu = Gpu::new(config(), vec![CodingView::baseline()]);
        let s = app.run(&mut gpu);
        if s.dynamic_instructions == 0 || s.view("baseline").unit(Unit::Reg).reads == 0 {
            failures.push(app.code);
        }
    }
    assert!(failures.is_empty(), "apps with no activity: {failures:?}");
}
